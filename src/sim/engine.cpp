// engine.cpp - EngineCore: the event loop behind simulate(),
// simulate_stream() and the batch driver. See engine_core.hpp for the
// reuse contract and sim/soa.hpp for the SoA state layout.
#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "core/validate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "sim/arrivals.hpp"
#include "sim/engine_core.hpp"

namespace ecs {
namespace detail {
namespace {

[[nodiscard]] obs::TracePoint span_point(Activity activity) {
  switch (activity) {
    case Activity::kUplink:
      return obs::TracePoint::kUplink;
    case Activity::kDownlink:
      return obs::TracePoint::kDownlink;
    case Activity::kCompute:
    case Activity::kNone:
      break;
  }
  return obs::TracePoint::kExec;
}

/// std::push_heap-style comparator making heap_.front() the earliest end.
[[nodiscard]] bool heap_later(const HeapEntry& a, const HeapEntry& b) {
  return a.time > b.time;
}

}  // namespace

EngineInstruments::EngineInstruments(obs::MetricsRegistry& registry)
    : events(registry.counter("engine.events")),
      decisions(registry.counter("engine.decisions")),
      reassignments(registry.counter("engine.reassignments")),
      preemptions(registry.counter("engine.preemptions")),
      fault_aborts(registry.counter("engine.fault_aborts")),
      uplink_retransmits(registry.counter("engine.uplink_retransmits")),
      downlink_retransmits(registry.counter("engine.downlink_retransmits")),
      message_losses(registry.counter("engine.message_losses")),
      rejections(registry.counter("engine.rejections")),
      sheds(registry.counter("engine.sheds")),
      queue_depth(registry.gauge("engine.ready_queue_depth")),
      peak_live(registry.gauge("engine.peak_live")),
      stretch(registry.histogram(
          "job.stretch", {1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0,
                          24.0, 32.0, 64.0, 128.0})),
      queue_wait(registry.histogram(
          "job.queue_wait",
          {0.0, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0})),
      phase_policy(registry.timer("engine.phase.policy")),
      phase_allocate(registry.timer("engine.phase.allocate")),
      phase_activate(registry.timer("engine.phase.activate")),
      phase_faults(registry.timer("engine.phase.faults")) {}

void EngineCore::prepare(const Instance& instance, ArrivalStream* stream,
                         Policy& policy, const EngineConfig& config) {
  instance_ = &instance;
  platform_ = &instance.platform;
  policy_ = &policy;
  stream_ = stream;
  streaming_ = stream != nullptr;
  prepared_ = false;
  config_ = config;
  trace_ = config.trace;
  metrics_ = config.metrics;
  // A watchdog taps the trace stream through an internal tee, so it works
  // with or without a user trace sink attached.
  tee_ = obs::TeeTraceSink{};
  if (config.watchdog != nullptr) {
    tee_.add(config.trace);
    tee_.add(config.watchdog);
    trace_ = &tee_;
  }
  provenance_on_ =
      (config.provenance || config.watchdog != nullptr) && trace_ != nullptr;
  ids_.reset();
  if (metrics_ != nullptr) ids_.emplace(*metrics_);
  if (streaming_ && !instance_->jobs.empty()) {
    throw std::invalid_argument(
        "simulate_stream: the base instance must have an empty job list "
        "(jobs come from the arrival stream)");
  }
  require_valid_instance(*instance_);
  config_.faults.normalize();
  require_valid_fault_plan(config_.faults, *platform_);
  admission_on_ = config_.admission.enabled();
  record_schedule_ = config_.record_schedule;
  busy_.resize(*platform_);
  init();
  prepared_ = true;
}

void EngineCore::init() {
  const int n = streaming_ ? 0 : instance_->job_count();
  // Reset every piece of run state; a reused core starts exactly like a
  // fresh one, but with its buffer capacity intact.
  pool_.reset(static_cast<std::size_t>(n));
  recorders_.assign(static_cast<std::size_t>(n), ActivityRecorder{});
  started_.assign(static_cast<std::size_t>(n), 0);
  live_.reset(static_cast<std::size_t>(n));
  entry_version_.assign(static_cast<std::size_t>(n), 0);
  seen_round_.assign(static_cast<std::size_t>(n), 0);
  round_ = 0;
  heap_.clear();
  events_.clear();
  fault_log_.clear();
  admission_log_.clear();
  abandoned_runs_.clear();
  active_ids_.clear();
  live_sorted_.clear();
  victims_.clear();
  dirty_slots_.clear();
  order_.clear();
  directives_.clear();
  boundaries_.clear();
  wakes_.clear();
  release_order_.clear();
  free_slots_.clear();
  retire_queue_.clear();
  completion_log_.clear();
  final_runs_.clear();
  id_map_.clear();
  pending_.reset();
  last_arrival_ = -kTimeInfinity;
  next_id_ = 0;
  next_release_ = 0;
  stats_ = SimStats{};
  events_since_completion_ = 0;
  granted_ = 0;
  now_ = 0.0;

  if (trace_ != nullptr) {
    spans_.assign(static_cast<std::size_t>(n), SpanState{});
    run_index_.assign(static_cast<std::size_t>(n), 0);
    if (provenance_on_) {
      last_dir_target_.assign(static_cast<std::size_t>(n), kDirectiveNone);
      last_dir_reason_.assign(static_cast<std::size_t>(n), 0);
    }
    obs::TraceMeta meta;
    meta.policy = policy_->name();
    meta.edge_count = platform_->edge_count();
    meta.cloud_count = platform_->cloud_count();
    if (streaming_) {
      const std::int64_t total = stream_->remaining();
      meta.job_count =
          total >= 0 && total <= std::numeric_limits<int>::max()
              ? static_cast<int>(total)
              : -1;
    } else {
      meta.job_count = n;
    }
    trace_->begin_trace(meta);
  }
  for (int i = 0; i < n; ++i) {
    pool_.job(i) = instance_->jobs[i];
    pool_.best_time(i) = platform_->best_time(pool_.job(i));
  }
  pool_.publish_all();
  // Outage boundaries (cloud availability windows): every begin and end
  // is a wake-up point where the engine re-arbitrates, so an in-flight
  // activity on a cloud that becomes unavailable is preempted exactly at
  // the boundary and can resume at the next one.
  for (const IntervalSet& outages : instance_->cloud_outages) {
    for (const Interval& iv : outages.intervals()) {
      boundaries_.push_back(iv.begin);
      boundaries_.push_back(iv.end);
    }
  }
  std::sort(boundaries_.begin(), boundaries_.end());
  next_boundary_ = 0;

  // Fault timeline: a wake-up per crash start, crash repair, and loss
  // instant, so every fault lands exactly on an engine event. Recoveries
  // sort before same-instant faults (a cloud repaired at t can crash
  // again at t, never the other way around).
  cloud_down_.assign(platform_->cloud_count(), 0);
  for (std::size_t f = 0; f < config_.faults.faults.size(); ++f) {
    const FaultSpec& spec = config_.faults.faults[f];
    wakes_.push_back(FaultWake{spec.begin, f, false});
    if (spec.kind == FaultKind::kCrash) {
      wakes_.push_back(FaultWake{spec.end, f, true});
    }
  }
  std::sort(wakes_.begin(), wakes_.end(),
            [](const FaultWake& a, const FaultWake& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.recovery != b.recovery) return a.recovery;
              return a.spec < b.spec;
            });
  next_wake_ = 0;

  if (streaming_) {
    remaining_jobs_ = 0;
    advance_stream();
    // Jump to the first arrival; faults scheduled earlier fire now (no
    // job existed to be hit, but the down/up state and the monitoring
    // events must be correct from the very first decision).
    now_ = pending_ ? pending_->release : 0.0;
  } else {
    release_order_.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) release_order_[i] = i;
    std::sort(release_order_.begin(), release_order_.end(),
              [&](JobId a, JobId b) {
                const Time ra = pool_.job(a).release;
                const Time rb = pool_.job(b).release;
                return ra != rb ? ra < rb : a < b;
              });
    next_release_ = 0;
    remaining_jobs_ = n;
    now_ = n > 0 ? pool_.job(release_order_[0]).release : 0.0;
  }
  fire_faults();
  fire_releases();
  stats_.events += events_.size();
  events_since_completion_ += events_.size();
}

// --- id -> slot translation (identity outside streaming mode) ---

/// Slot of `id`'s state, or a negative value when the id is out of bounds
/// or untracked (streaming: retired, rejected, or never seen).
std::int32_t EngineCore::find_slot(JobId id) const noexcept {
  if (!streaming_) {
    return id >= 0 && id < static_cast<JobId>(pool_.size())
               ? static_cast<std::int32_t>(id)
               : kSlotRetired;
  }
  return id_map_.find(id);
}

/// Pulls the next arrival into pending_, enforcing the stream contract.
void EngineCore::advance_stream() {
  pending_ = stream_->next();
  if (!pending_) return;
  const Job& job = *pending_;
  if (job.id < 0 || id_map_.find(job.id) >= 0) {
    throw std::runtime_error(
        "arrival stream " + stream_->name() +
        " emitted a duplicate or negative job id " + std::to_string(job.id));
  }
  if (!(job.release >= last_arrival_)) {
    std::ostringstream os;
    os << "arrival stream " << stream_->name()
       << " emitted decreasing release dates (" << job.release << " after "
       << last_arrival_ << ", job " << job.id << ")";
    throw std::runtime_error(os.str());
  }
  const std::string problem = validate_job(job, platform_->edge_count());
  if (!problem.empty()) {
    throw std::runtime_error("arrival stream " + stream_->name() +
                             " emitted an invalid job: " + problem);
  }
  last_arrival_ = job.release;
  if (job.id >= next_id_) next_id_ = job.id + 1;
}

// --- lazy-deletion heap over predicted activity end times ---

void EngineCore::heap_push(std::int32_t slot, Time end) {
  heap_.push_back(HeapEntry{end, slot, ++entry_version_[slot]});
  std::push_heap(heap_.begin(), heap_.end(), &heap_later);
}

bool EngineCore::heap_entry_valid(const HeapEntry& e) const {
  return e.version == entry_version_[e.slot] &&
         pool_.active(e.slot) != Activity::kNone;
}

/// Skims invalidated tops and returns the earliest valid activity end
/// (infinity when nothing is running).
Time EngineCore::next_activity_end() {
  while (!heap_.empty() && !heap_entry_valid(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), &heap_later);
    heap_.pop_back();
  }
  return heap_.empty() ? kTimeInfinity : heap_.front().time;
}

/// Keeps the heap proportional to the active set: once stale entries
/// dominate, drop them all in one O(size) sweep (amortized O(1)/push).
void EngineCore::maybe_compact_heap() {
  if (heap_.size() < 64 || heap_.size() < 4 * active_ids_.size()) return;
  std::erase_if(heap_,
                [this](const HeapEntry& e) { return !heap_entry_valid(e); });
  std::make_heap(heap_.begin(), heap_.end(), &heap_later);
}

/// Releases every arrival due at `now_` (within tolerance), each one
/// routed through admission control.
void EngineCore::fire_releases() {
  if (streaming_) {
    while (pending_ && time_le(pending_->release, now_)) {
      const Job job = *pending_;
      advance_stream();
      admit(job);
    }
  } else {
    while (next_release_ < release_order_.size()) {
      const JobId id = release_order_[next_release_];
      if (!time_le(pool_.job(id).release, now_)) break;
      ++next_release_;
      admit(pool_.job(id));
    }
  }
}

// --- admission control (EngineConfig::admission) ---

/// Admits one arrival: with admission disabled this is exactly the plain
/// release path (live insert + kRelease event + trace instant). A
/// rejected arrival leaves no trace besides the kReject instant and the
/// admission log — policies never learn it existed.
void EngineCore::admit(const Job& job) {
  if (admission_on_ && !admission_allows(job)) return;
  const std::int32_t slot = acquire_slot(job);
  pool_.released(slot) = 1;
  live_.insert(job.id, slot);
  if (streaming_) ++remaining_jobs_;
  ++stats_.admitted;
  if (live_.size() > stats_.peak_live) {
    stats_.peak_live = live_.size();
  }
  events_.push_back(Event{EventKind::kRelease, job.id, now_});
  if (trace_ != nullptr) {
    trace_instant(obs::TracePoint::kRelease, slot, -1, 0.0);
  }
}

/// Finds (or creates) the state slot for an admitted arrival. In
/// materialized mode the slot is the job id (pool sized in init); in
/// streaming mode slots are recycled through a free list.
std::int32_t EngineCore::acquire_slot(const Job& job) {
  if (!streaming_) return static_cast<std::int32_t>(job.id);
  std::int32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    pool_.clear_slot(slot);
  } else {
    slot = pool_.grow();
    recorders_.emplace_back();
    started_.push_back(0);
    live_.grow();
    entry_version_.push_back(0);
    seen_round_.push_back(0);
    if (trace_ != nullptr) {
      spans_.emplace_back();
      run_index_.push_back(0);
    }
    if (provenance_on_) {
      last_dir_target_.push_back(kDirectiveNone);
      last_dir_reason_.push_back(0);
    }
  }
  pool_.job(slot) = job;
  pool_.best_time(slot) = platform_->best_time(job);
  recorders_[slot] = ActivityRecorder{};
  started_[slot] = 0;
  seen_round_[slot] = 0;
  // entry_version_ is deliberately NOT reset: retirement bumped it, so
  // heap entries of the previous occupant stay dead.
  if (trace_ != nullptr) {
    spans_[slot] = SpanState{};
    run_index_[slot] = 0;
  }
  if (provenance_on_) {
    last_dir_target_[slot] = kDirectiveNone;
    last_dir_reason_[slot] = 0;
  }
  id_map_.insert(job.id, slot);
  if (id_map_.size() > stats_.peak_tracked) {
    stats_.peak_tracked = id_map_.size();
  }
  return slot;
}

/// Applies the configured shed rule, then the caps. Returns true when the
/// arrival may be admitted; otherwise records and traces the rejection.
bool EngineCore::admission_allows(const Job& job) {
  const AdmissionConfig& adm = config_.admission;
  if (adm.rule == AdmissionRule::kShedInfeasible && adm.stretch_limit > 0.0) {
    shed_infeasible(std::max(adm.stretch_limit, 1.0));
  }
  const bool over_live = adm.max_live > 0 && live_.size() >= adm.max_live;
  const bool over_queue =
      adm.max_queue > 0 && queued_count() >= adm.max_queue;
  if (!over_live && !over_queue) return true;
  if (adm.rule == AdmissionRule::kRejectHopeless && shed_most_hopeless()) {
    return true;
  }
  reject(job);
  return false;
}

/// Live jobs holding no resource at this instant (the admission queue).
std::uint64_t EngineCore::queued_count() const {
  std::uint64_t waiting = 0;
  for (const soa::LiveIndex::Entry& e : live_) {
    if (pool_.active(e.slot) == Activity::kNone) ++waiting;
  }
  return waiting;
}

/// Stretch lower bound of a never-started resident: even started now on
/// its best resource it finishes no earlier than now_ + best_time.
double EngineCore::stretch_lower_bound(std::int32_t slot) const {
  const double best = pool_.best_time(slot);
  const double denom = best > 0.0 ? best : 1.0;
  return (now_ - pool_.job(slot).release + best) / denom;
}

/// A resident may be shed only if it never started (so the "no recorded
/// activity" invariant holds) and was released strictly before this
/// event batch (so no event in flight can still reference it).
bool EngineCore::sheddable(std::int32_t slot) const {
  return started_[slot] == 0 && !time_le(now_, pool_.job(slot).release);
}

/// kShedInfeasible: evicts every sheddable resident whose stretch lower
/// bound already exceeds `limit` — its deadline release + limit *
/// best_time cannot be met no matter what the policy does.
void EngineCore::shed_infeasible(double limit) {
  victims_.clear();
  for (const soa::LiveIndex::Entry& e : live_) {
    if (!sheddable(e.slot)) continue;
    if (stretch_lower_bound(e.slot) > limit) victims_.push_back(e.id);
  }
  std::sort(victims_.begin(), victims_.end());
  for (const JobId id : victims_) {
    shed(id, ReasonCode::kAdmissionDeadlineInfeasible);
  }
}

/// kRejectHopeless: evicts the sheddable resident with the worst stretch
/// lower bound, provided it is worse than the arrival's own (1.0 at its
/// release). Ties prefer the newest (largest id). Returns true when a
/// victim was shed, making room for the arrival.
bool EngineCore::shed_most_hopeless() {
  JobId worst = -1;
  double worst_lb = 1.0;
  for (const soa::LiveIndex::Entry& e : live_) {
    if (!sheddable(e.slot)) continue;
    const double lb = stretch_lower_bound(e.slot);
    if (lb > worst_lb) {
      worst = e.id;
      worst_lb = lb;
    } else if (lb == worst_lb && worst >= 0 && e.id > worst) {
      worst = e.id;
    }
  }
  if (worst < 0) return false;
  shed(worst, ReasonCode::kAdmissionStretchHopeless);
  return true;
}

/// Refuses an arrival: no state, no kRelease event, only the kReject
/// instant (value = resident count at refusal) and the admission log.
void EngineCore::reject(const Job& job) {
  ++stats_.rejections;
  if (!streaming_) --remaining_jobs_;
  if (config_.record_admission) {
    admission_log_.push_back(
        AdmissionRecord{job.id, now_, ReasonCode::kAdmissionQueueFull, false});
  }
  if (trace_ != nullptr) {
    obs::TraceRecord rec;
    rec.kind = obs::TraceKind::kInstant;
    rec.point = obs::TracePoint::kReject;
    rec.job = job.id;
    rec.origin = job.origin;
    rec.begin = rec.end = now_;
    rec.value = static_cast<double>(live_.size());
    rec.reason = static_cast<int>(ReasonCode::kAdmissionQueueFull);
    trace_->record(rec);
  }
  // A rejected id acquires no slot and is never entered into the id map,
  // so there is nothing to clean up in streaming mode.
}

/// Evicts an admitted, never-started resident (value = its stretch lower
/// bound at eviction). Its slot is recycled immediately in streaming mode
/// — nothing in flight references a never-started job released before
/// this batch.
void EngineCore::shed(JobId id, ReasonCode reason) {
  const std::int32_t slot = find_slot(id);
  if (trace_ != nullptr) {
    obs::TraceRecord rec;
    rec.kind = obs::TraceKind::kInstant;
    rec.point = obs::TracePoint::kShed;
    rec.job = id;
    rec.run = run_index_.empty() ? 0 : run_index_[slot];
    rec.origin = pool_.job(slot).origin;
    rec.alloc = pool_.alloc(slot);
    rec.begin = rec.end = now_;
    rec.value = stretch_lower_bound(slot);
    rec.reason = static_cast<int>(reason);
    trace_->record(rec);
  }
  live_.erase(slot);
  pool_.released(slot) = 0;  // expelled: live() is false from here on
  ++entry_version_[slot];
  ++stats_.sheds;
  --remaining_jobs_;
  if (config_.record_admission) {
    admission_log_.push_back(AdmissionRecord{id, now_, reason, true});
  }
  if (streaming_) {
    retire_slot(slot);
  } else {
    // The slot left the live set with new state (released = false); the
    // policy snapshot must show that on the next round.
    dirty_slots_.push_back(slot);
  }
}

/// Recycles a slot (streaming only): harvests its run record and
/// completion time into the result logs, kills stale heap entries and
/// returns the slot to the free list.
void EngineCore::retire_slot(std::int32_t slot) {
  const JobId id = pool_.job(slot).id;
  ActivityRecorder& rec = recorders_[slot];
  if (config_.record_schedule) {
    rec.close(now_);
    final_runs_.emplace_back(id, std::move(rec.current));
    rec.current = RunRecord{};
  }
  if (config_.record_completions && pool_.done(slot) != 0) {
    completion_log_.emplace_back(id, pool_.completion(slot));
  }
  ++entry_version_[slot];
  id_map_.erase(id);
  free_slots_.push_back(slot);
}

/// Retires every job whose completion events the policy has now seen.
void EngineCore::flush_retired() {
  for (const std::int32_t slot : retire_queue_) retire_slot(slot);
  retire_queue_.clear();
}

// --- trace emission helpers; callers guard on trace_ != nullptr ---

/// Closes the slot's open activity span, emitting it ending at `now_`.
void EngineCore::trace_close_span(std::int32_t slot) {
  SpanState& span = spans_[slot];
  if (span.activity == Activity::kNone) return;
  obs::TraceRecord rec;
  rec.kind = obs::TraceKind::kSpan;
  rec.point = span_point(span.activity);
  rec.job = pool_.job(slot).id;
  rec.run = run_index_[slot];
  rec.alloc = span.alloc;
  rec.origin = pool_.job(slot).origin;
  rec.begin = span.begin;
  rec.end = now_;
  trace_->record(rec);
  span.activity = Activity::kNone;
}

/// `slot` < 0 emits a job-less instant (rec.job = -1).
void EngineCore::trace_instant(obs::TracePoint point, std::int32_t slot,
                               int cloud, double value) {
  obs::TraceRecord rec;
  rec.kind = obs::TraceKind::kInstant;
  rec.point = point;
  rec.cloud = cloud;
  rec.begin = rec.end = now_;
  rec.value = value;
  if (slot >= 0) {
    rec.job = pool_.job(slot).id;
    rec.run = run_index_[slot];
    rec.origin = pool_.job(slot).origin;
    rec.alloc = pool_.alloc(slot);
  }
  trace_->record(rec);
}

/// Emits one decision-provenance instant (TracePoint::kDirective):
/// alloc = resolved target, cloud = allocation before the directive,
/// value = priority, reason = the policy's ReasonCode. Caller guards on
/// provenance_on_.
void EngineCore::trace_directive(std::int32_t slot, int source, int target,
                                 const Directive& d) {
  obs::TraceRecord rec;
  rec.kind = obs::TraceKind::kInstant;
  rec.point = obs::TracePoint::kDirective;
  rec.job = pool_.job(slot).id;
  rec.run = run_index_[slot];
  rec.origin = pool_.job(slot).origin;
  rec.alloc = target;
  rec.cloud = source;
  rec.begin = rec.end = now_;
  rec.value = d.priority;
  rec.reason = static_cast<int>(d.reason);
  trace_->record(rec);
  last_dir_target_[slot] = target;
  last_dir_reason_[slot] = static_cast<int>(d.reason);
}

/// Provenance for a directive that does not move the job (kTargetKeep or
/// an explicit re-confirmation of the current allocation). Policies emit
/// these at EVERY event, so identical repeats are deduplicated: a keep is
/// recorded when its resolved target or reason differs from the job's
/// last emitted directive.
void EngineCore::trace_keep_directive(const Directive& d) {
  const std::int32_t slot = find_slot(d.job);
  if (slot < 0) return;
  if (!pool_.live(slot)) return;
  const int alloc = pool_.alloc(slot);
  if (last_dir_target_[slot] == alloc &&
      last_dir_reason_[slot] == static_cast<int>(d.reason)) {
    return;
  }
  trace_directive(slot, alloc, alloc, d);
}

void EngineCore::trace_counter(obs::TracePoint point, double value) {
  obs::TraceRecord rec;
  rec.kind = obs::TraceKind::kCounter;
  rec.point = point;
  rec.begin = rec.end = now_;
  rec.value = value;
  trace_->record(rec);
}

void EngineCore::step() {
  decide_and_activate();
  advance_to_next_event();
}

/// Refreshes the policy-facing AoS snapshot for every slot whose state may
/// have changed since the last decision round: the live set (all progress,
/// allocation and activation changes happen to live jobs), the slots of
/// this batch's events (a just-completed job has left the live set but its
/// completion event still references it), and slots dirtied out-of-band
/// (sheds). Any other slot is untouched since its last publish, so the
/// snapshot is exact everywhere a policy can look.
void EngineCore::publish_policy_view() {
  for (const soa::LiveIndex::Entry& e : live_) pool_.publish(e.slot);
  for (const Event& ev : events_) {
    if (ev.job < 0) continue;
    const std::int32_t slot = find_slot(ev.job);
    if (slot >= 0) pool_.publish(slot);
  }
  for (const std::int32_t slot : dirty_slots_) pool_.publish(slot);
  dirty_slots_.clear();
}

void EngineCore::decide_and_activate() {
  // 1. Ask the policy what to do about the events that just fired. The
  //    sorted live index gives SimView::live_jobs() in O(live) and, below,
  //    the id-ordered implicit-keep walk the old full-state scan provided.
  live_sorted_.clear();
  for (const soa::LiveIndex::Entry& e : live_) live_sorted_.push_back(e.id);
  std::sort(live_sorted_.begin(), live_sorted_.end());
  publish_policy_view();
  const SimView view =
      streaming_ ? SimView(*instance_, pool_.policy_view(), now_,
                           &live_sorted_, &id_map_)
                 : SimView(*instance_, pool_.policy_view(), now_,
                           &live_sorted_);
  // Two steady-clock reads per round are measurable at batch scale, so the
  // policy timer sits behind a switch (EngineConfig::time_policy); a
  // metrics registry needs the readings for its phase timer either way.
  const bool timed = config_.time_policy || metrics_ != nullptr;
  std::chrono::steady_clock::time_point t0;
  if (timed) t0 = std::chrono::steady_clock::now();
  // One buffer, reused round after round: with the per-policy workspaces
  // (DESIGN.md §6) the steady-state policy hot path allocates nothing.
  std::vector<Directive>& directives = directives_;
  directives.clear();
  policy_->decide(view, events_, directives);
  if (timed) {
    const auto t1 = std::chrono::steady_clock::now();
    stats_.policy_seconds += std::chrono::duration<double>(t1 - t0).count();
    if (metrics_ != nullptr) {
      metrics_->add_nanos(
          ids_->phase_policy,
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()));
    }
  }
  ++stats_.decisions;
  if (trace_ != nullptr) {
    trace_instant(obs::TracePoint::kDecision, -1, -1,
                  static_cast<double>(directives.size()));
  }
  events_.clear();

  // 2. Close all open intervals; they will reopen seamlessly below
  //    (IntervalSet::add merges touching pieces). A job still mid-activity
  //    is flagged so arbitration can spot preemptions: only these jobs —
  //    at most one per processor or port — can lose a resource they still
  //    need. The flag is consumed inside this round (apply_directive or
  //    try_activate), never carried over. Only members of the active set
  //    can be mid-activity; entries already stopped by a completion,
  //    fault abort or message loss are skipped.
  for (const std::int32_t slot : active_ids_) {
    if (pool_.active(slot) != Activity::kNone) {
      pool_.was_active(slot) = 1;
      if (record_schedule_) recorders_[slot].close(now_);
      pool_.active(slot) = Activity::kNone;
    }
  }
  active_ids_.clear();
  // Completed jobs retire only now: the policy has consumed their
  // completion events above, so nothing references the slots any more.
  if (streaming_ && !retire_queue_.empty()) flush_retired();

  // 3. Apply allocation changes (the re-execution rule).
  {
    const obs::ScopeTimer timer(
        metrics_, metrics_ != nullptr ? ids_->phase_allocate : 0);
    for (const Directive& d : directives) {
      apply_directive(d);
    }
  }

  // 4. Activate activities in priority order. Jobs without an explicit
  //    directive keep their allocation at the lowest priority, ordered by
  //    id, so the engine stays work-conserving and deterministic.
  granted_ = 0;
  {
    const obs::ScopeTimer timer(
        metrics_, metrics_ != nullptr ? ids_->phase_activate : 0);
    order_.clear();
    for (const Directive& d : directives) {
      const std::int32_t slot = find_slot(d.job);
      if (slot >= 0 && pool_.live(slot)) {
        order_.push_back({d.priority, d.job});
      }
    }
    // Round stamps replace a per-round O(n) boolean reset: a job is
    // "seen" iff its stamp equals the current round's.
    if (++round_ == 0) {  // wrap: old stamps could collide, wipe them
      seen_round_.assign(seen_round_.size(), 0);
      round_ = 1;
    }
    for (const auto& [prio, id] : order_) {
      seen_round_[find_slot(id)] = round_;
    }
    for (const JobId id : live_sorted_) {
      if (seen_round_[find_slot(id)] != round_) {
        order_.push_back({kTimeInfinity, id});
      }
    }
    // (priority, id) pairs only tie when they are fully identical
    // (duplicate directives), so a plain sort yields the same sequence a
    // stable sort would — without libstdc++'s temporary buffer.
    std::sort(order_.begin(), order_.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first < b.first
                                          : a.second < b.second;
              });

    busy_.clear();
    for (const auto& [prio, id] : order_) {
      try_activate(find_slot(id));
    }
    // Completions must fire in job-id order (policies and traces observe
    // the event order), so keep the active set id-sorted between rounds.
    // Slots are not id-ordered in streaming mode, hence the comparator;
    // in materialized mode slot == id and this is a plain sort.
    std::sort(active_ids_.begin(), active_ids_.end(),
              [this](std::int32_t a, std::int32_t b) {
                return pool_.job(a).id < pool_.job(b).id;
              });
    maybe_compact_heap();
  }

  // 5. Ready-queue depth after arbitration: live jobs holding no
  //    resource. A job holds a resource iff try_activate granted it one
  //    this round, so the depth falls out of two counters with no extra
  //    pass over the pool.
  const std::uint64_t waiting = live_.size() - granted_;
  if (waiting > stats_.max_queue_depth) stats_.max_queue_depth = waiting;
  if (metrics_ != nullptr) {
    metrics_->gauge_set(ids_->queue_depth, static_cast<double>(waiting));
  }
  if (trace_ != nullptr) sample_counters(waiting);
}

/// Emits the event-granularity time series into the trace.
void EngineCore::sample_counters(std::uint64_t waiting) {
  trace_counter(obs::TracePoint::kReadyQueueDepth,
                static_cast<double>(waiting));
  double live_max = stats_.max_stretch;
  for (const JobId id : live_sorted_) {
    const std::int32_t slot = find_slot(id);
    const double best = pool_.best_time(slot);
    const double denom = best > 0.0 ? best : 1.0;
    live_max = std::max(live_max, (now_ - pool_.job(slot).release) / denom);
  }
  trace_counter(obs::TracePoint::kLiveMaxStretch, live_max);
  if (platform_->edge_count() > 0) {
    int busy = 0;
    for (const JobId id : busy_.edge_cpu) busy += id != -1 ? 1 : 0;
    trace_counter(obs::TracePoint::kEdgeUtilization,
                  static_cast<double>(busy) / platform_->edge_count());
  }
  if (platform_->cloud_count() > 0) {
    int busy = 0;
    for (const JobId id : busy_.cloud_cpu) busy += id != -1 ? 1 : 0;
    trace_counter(obs::TracePoint::kCloudUtilization,
                  static_cast<double>(busy) / platform_->cloud_count());
  }
}

void EngineCore::apply_directive(const Directive& d) {
  if (d.target == kTargetKeep) {
    // Keeps skip all validation (a keep for a finished or unknown job is
    // harmless); provenance still wants the deduplicated decision.
    if (provenance_on_) trace_keep_directive(d);
    return;
  }
  if (d.job < 0 ||
      (!streaming_ && d.job >= static_cast<JobId>(pool_.size())) ||
      (streaming_ && d.job >= next_id_)) {
    throw std::runtime_error("policy " + policy_->name() +
                             " issued a directive for unknown job " +
                             std::to_string(d.job));
  }
  const std::int32_t slot = find_slot(d.job);
  if (slot < 0) return;  // streaming: retired or rejected, stale directive
  if (!pool_.live(slot)) return;
  if (d.target != kAllocEdge &&
      (!is_cloud_alloc(d.target) || d.target >= platform_->cloud_count())) {
    throw std::runtime_error("policy " + policy_->name() +
                             " issued invalid target " +
                             std::to_string(d.target) + " for job " +
                             std::to_string(d.job));
  }
  if (d.target == pool_.alloc(slot)) {
    if (provenance_on_) trace_keep_directive(d);
    return;
  }
  if (provenance_on_) trace_directive(slot, pool_.alloc(slot), d.target, d);

  ActivityRecorder& rec = recorders_[slot];
  if (record_schedule_) rec.close(now_);
  const int old_alloc = pool_.alloc(slot);
  if (old_alloc != kAllocUnassigned) {
    // Abandon the current run; its history stays on the books because it
    // physically occupied resources.
    ++pool_.reassignments(slot);
    ++stats_.reassignments;
    if (record_schedule_) {
      if (rec.has_history()) {
        abandoned_runs_.emplace_back(d.job, std::move(rec.current));
      }
      rec.current = RunRecord{};
    }
  }
  // A reassignment is not a preemption: the job lost its resource because
  // its allocation changed, so drop the round's mid-activity flag.
  pool_.was_active(slot) = 0;
  if (trace_ != nullptr) {
    trace_close_span(slot);
    if (old_alloc != kAllocUnassigned) ++run_index_[slot];
  }
  pool_.alloc(slot) = d.target;
  if (record_schedule_) rec.current.alloc = d.target;
  if (d.target == kAllocEdge) {
    pool_.rem_up(slot) = 0.0;
    pool_.rem_work(slot) = pool_.job(slot).work;
    pool_.rem_down(slot) = 0.0;
  } else {
    pool_.rem_up(slot) = pool_.job(slot).up;
    pool_.rem_work(slot) = pool_.job(slot).work;
    pool_.rem_down(slot) = pool_.job(slot).down;
  }
  if (trace_ != nullptr && old_alloc != kAllocUnassigned) {
    trace_instant(obs::TracePoint::kReassignment, slot, -1,
                  static_cast<double>(old_alloc));
  }
}

/// Consumes a job's was_active flag after it failed arbitration: a job
/// that was mid-activity, kept its allocation, and got nothing was
/// preempted (outprioritized, or its cloud entered an outage / crash
/// window). A no-op for jobs that were idle or already re-granted.
void EngineCore::note_preemption(std::int32_t slot) {
  if (pool_.was_active(slot) == 0) return;
  pool_.was_active(slot) = 0;
  ++stats_.preemptions;
  if (trace_ != nullptr) {
    trace_close_span(slot);
    trace_instant(obs::TracePoint::kPreemption, slot, -1, 0.0);
  }
}

void EngineCore::try_activate(const std::int32_t slot) {
  if (!pool_.live(slot)) return;
  const Activity needed = pool_.next_activity(slot);
  if (needed == Activity::kNone) {
    note_preemption(slot);
    return;
  }
  const int alloc = pool_.alloc(slot);
  const EdgeId o = pool_.job(slot).origin;
  const JobId id = pool_.job(slot).id;
  // A cloud processor inside an availability outage serves nothing —
  // neither computation nor communication involving it. The same holds
  // for an unannounced crash, except that the policy was never told.
  if (is_cloud_alloc(alloc) && (!instance_->cloud_available(alloc, now_) ||
                                cloud_down_[alloc] != 0)) {
    note_preemption(slot);
    return;
  }
  switch (needed) {
    case Activity::kCompute:
      if (alloc == kAllocEdge) {
        if (busy_.edge_cpu[o] != -1) {
          note_preemption(slot);
          return;
        }
        busy_.edge_cpu[o] = id;
      } else {
        if (busy_.cloud_cpu[alloc] != -1) {
          note_preemption(slot);
          return;
        }
        busy_.cloud_cpu[alloc] = id;
      }
      break;
    case Activity::kUplink:
      if (busy_.edge_send[o] != -1 || busy_.cloud_recv[alloc] != -1) {
        note_preemption(slot);
        return;
      }
      busy_.edge_send[o] = id;
      busy_.cloud_recv[alloc] = id;
      break;
    case Activity::kDownlink:
      if (busy_.cloud_send[alloc] != -1 || busy_.edge_recv[o] != -1) {
        note_preemption(slot);
        return;
      }
      busy_.cloud_send[alloc] = id;
      busy_.edge_recv[o] = id;
      break;
    case Activity::kNone:
      return;
  }
  pool_.active(slot) = needed;
  pool_.was_active(slot) = 0;
  // Lazy progress accounting: anchor the activity at now_ with its
  // consumption rate, enter the active set, and predict the end time
  // analytically. The prediction is exact — rates only change through a
  // re-grant, which pushes a fresh (versioned) entry.
  pool_.rate(slot) = needed == Activity::kCompute
                         ? (alloc == kAllocEdge ? platform_->edge_speed(o)
                                                : platform_->cloud_speed(alloc))
                         : 1.0;
  pool_.last_update(slot) = now_;
  active_ids_.push_back(slot);
  heap_push(slot, activity_end(slot));
  ++granted_;
  if (record_schedule_) recorders_[slot].open(needed, now_);
  if (started_[slot] == 0) {
    started_[slot] = 1;
    if (metrics_ != nullptr) {
      metrics_->observe(ids_->queue_wait, now_ - pool_.job(slot).release);
    }
  }
  if (trace_ != nullptr) {
    // Reopening the same activity on the same allocation continues the
    // current span; anything else starts a fresh one.
    SpanState& span = spans_[slot];
    if (span.activity != needed || span.alloc != alloc) {
      trace_close_span(slot);
      span.activity = needed;
      span.alloc = alloc;
      span.begin = now_;
    }
  }
}

Time EngineCore::activity_end(std::int32_t slot) const {
  switch (pool_.active(slot)) {
    case Activity::kUplink:
      return now_ + clamp_amount(pool_.rem_up(slot));
    case Activity::kCompute:
      if (pool_.alloc(slot) == kAllocEdge) {
        return now_ + clamp_amount(pool_.rem_work(slot)) /
                          platform_->edge_speed(pool_.job(slot).origin);
      }
      return now_ + clamp_amount(pool_.rem_work(slot)) /
                        platform_->cloud_speed(pool_.alloc(slot));
    case Activity::kDownlink:
      return now_ + clamp_amount(pool_.rem_down(slot));
    case Activity::kNone:
      return kTimeInfinity;
  }
  return kTimeInfinity;
}

void EngineCore::advance_to_next_event() {
  // Earliest predicted activity end, straight off the heap top — no scan.
  Time next = next_activity_end();
  if (streaming_) {
    if (pending_) next = std::min(next, pending_->release);
  } else if (next_release_ < release_order_.size()) {
    next = std::min(next, pool_.job(release_order_[next_release_]).release);
  }
  while (next_boundary_ < boundaries_.size() &&
         time_le(boundaries_[next_boundary_], now_)) {
    ++next_boundary_;
  }
  if (next_boundary_ < boundaries_.size()) {
    next = std::min(next, boundaries_[next_boundary_]);
  }
  if (next_wake_ < wakes_.size()) {
    next = std::min(next, wakes_[next_wake_].time);
  }
  if (next == kTimeInfinity) {
    std::ostringstream os;
    os << "simulation stalled at t=" << now_ << ": policy "
       << policy_->name() << " left all " << remaining_jobs_
       << " live job(s) without a runnable activity and no event is "
          "pending; live jobs: "
       << describe_live_jobs();
    throw std::runtime_error(os.str());
  }

  // Materialize progress for the active set only (every member was
  // re-anchored at now_ this round, so the elapsed span is next - now_).
  for (const std::int32_t slot : active_ids_) {
    pool_.advance_progress(slot, next);
  }
  now_ = next;

  // Fire completions. active_ids_ is id-sorted, so completion events are
  // emitted in job-id order — the order policies and traces observe.
  bool job_completed = false;
  for (const std::int32_t slot : active_ids_) {
    const Activity active = pool_.active(slot);
    if (active == Activity::kNone) continue;
    const JobId id = pool_.job(slot).id;
    bool fired = false;
    switch (active) {
      case Activity::kUplink:
        if (amount_done(pool_.rem_up(slot))) {
          pool_.rem_up(slot) = 0.0;
          events_.push_back(Event{EventKind::kUplinkDone, id, now_});
          fired = true;
        }
        break;
      case Activity::kCompute:
        if (amount_done(pool_.rem_work(slot))) {
          pool_.rem_work(slot) = 0.0;
          events_.push_back(Event{EventKind::kComputeDone, id, now_});
          fired = true;
        }
        break;
      case Activity::kDownlink:
        if (amount_done(pool_.rem_down(slot))) {
          pool_.rem_down(slot) = 0.0;
          events_.push_back(Event{EventKind::kDownlinkDone, id, now_});
          fired = true;
        }
        break;
      case Activity::kNone:
        break;
    }
    if (fired) {
      if (record_schedule_) recorders_[slot].close(now_);
      pool_.active(slot) = Activity::kNone;
      if (trace_ != nullptr) trace_close_span(slot);
      if (pool_.all_amounts_done(slot)) {
        pool_.done(slot) = 1;
        job_completed = true;
        live_.erase(slot);
        pool_.completion(slot) = now_;
        --remaining_jobs_;
        ++stats_.completed;
        const double best = pool_.best_time(slot);
        const double denom = best > 0.0 ? best : 1.0;
        const double stretch = (now_ - pool_.job(slot).release) / denom;
        stats_.max_stretch = std::max(stats_.max_stretch, stretch);
        if (metrics_ != nullptr) {
          metrics_->observe(ids_->stretch, stretch);
        }
        if (trace_ != nullptr) {
          trace_instant(obs::TracePoint::kCompletion, slot, -1, stretch);
        }
        // Retirement is deferred to the next decision round: the policy
        // must still see this completion event with the state attached.
        if (streaming_) retire_queue_.push_back(slot);
      }
    }
  }
  fire_faults();
  fire_releases();

  stats_.events += events_.size();
  if (config_.max_events != 0 && stats_.events > config_.max_events) {
    std::ostringstream os;
    os << "event cap (" << config_.max_events << ") exceeded at t=" << now_
       << " by policy " << policy_->name() << " with " << remaining_jobs_
       << " live job(s) after " << stats_.reassignments
       << " reassignment(s) and " << stats_.fault_aborts
       << " fault abort(s); the policy is likely thrashing "
          "re-executions; live jobs: "
       << describe_live_jobs();
    throw std::runtime_error(os.str());
  }
  // Progress watchdog: a thrashing policy fires activity events forever
  // without completing a job, so count events since the last completion —
  // meaningful even when the total event count is unbounded (streaming).
  if (job_completed) {
    events_since_completion_ = 0;
  } else {
    events_since_completion_ += events_.size();
    const std::uint64_t cap =
        config_.stall_events != 0
            ? config_.stall_events
            : std::max<std::uint64_t>(
                  kStallFloor,
                  512 * static_cast<std::uint64_t>(live_.size()));
    if (events_since_completion_ > cap) {
      std::ostringstream os;
      os << "progress watchdog: " << events_since_completion_
         << " event(s) since the last job completion (cap " << cap
         << ") at t=" << now_ << " under policy " << policy_->name()
         << " with " << live_.size() << " live job(s) after "
         << stats_.reassignments << " reassignment(s) and "
         << stats_.fault_aborts
         << " fault abort(s); the policy is likely thrashing "
            "re-executions; live jobs: "
         << describe_live_jobs();
      throw std::runtime_error(os.str());
    }
  }
}

/// Compact dump of the live jobs — id, allocation, current activity —
/// for the stall / event-cap diagnostics. Capped at 8 entries.
std::string EngineCore::describe_live_jobs() const {
  std::vector<soa::LiveIndex::Entry> live(live_.begin(), live_.end());
  std::sort(live.begin(), live.end(),
            [](const soa::LiveIndex::Entry& a,
               const soa::LiveIndex::Entry& b) { return a.id < b.id; });
  std::ostringstream os;
  int shown = 0;
  for (const soa::LiveIndex::Entry& e : live) {
    const std::int32_t slot = e.slot;
    if (shown == 8) {
      os << ", ...";
      break;
    }
    if (shown > 0) os << ", ";
    os << "J" << pool_.job(slot).id << "(";
    const int alloc = pool_.alloc(slot);
    if (alloc == kAllocUnassigned) {
      os << "unassigned";
    } else if (alloc == kAllocEdge) {
      os << "edge" << pool_.job(slot).origin;
    } else {
      os << "cloud" << alloc;
      if (cloud_down_[alloc] != 0) os << ":down";
    }
    os << "/" << to_string(pool_.active(slot)) << ")";
    ++shown;
  }
  if (shown == 0) os << "none";
  return os.str();
}

/// Processes every fault-timeline wake-up that is due at `now_`: flips
/// the down/up state, fires the monitoring events, aborts crash victims
/// (progress fully discarded — the machine's memory is gone) and corrupts
/// in-flight messages at loss instants.
void EngineCore::fire_faults() {
  if (next_wake_ >= wakes_.size() ||
      !time_le(wakes_[next_wake_].time, now_)) {
    return;  // nothing due; skip the phase timer's clock reads
  }
  const obs::ScopeTimer timer(metrics_,
                              metrics_ != nullptr ? ids_->phase_faults : 0);
  while (next_wake_ < wakes_.size() &&
         time_le(wakes_[next_wake_].time, now_)) {
    const FaultWake& wake = wakes_[next_wake_];
    const FaultSpec& spec = config_.faults.faults[wake.spec];
    if (wake.recovery) {
      cloud_down_[spec.cloud] = 0;
      push_fault_event(Event{EventKind::kRecovery, -1, now_, spec.cloud});
      if (trace_ != nullptr) {
        trace_instant(obs::TracePoint::kRecovery, -1, spec.cloud, 0.0);
      }
    } else if (spec.kind == FaultKind::kCrash) {
      cloud_down_[spec.cloud] = 1;
      push_fault_event(Event{EventKind::kFault, -1, now_, spec.cloud});
      if (trace_ != nullptr) {
        trace_instant(obs::TracePoint::kFault, -1, spec.cloud, 0.0);
      }
      abort_jobs_on_cloud(spec.cloud);
    } else {
      corrupt_in_flight_message(spec);
    }
    ++next_wake_;
  }
}

/// Crash semantics: every job allocated to the crashed cloud loses ALL
/// progress (uplink included — the data sat on the dead machine, not in
/// the network) and returns to the unassigned state; the partial run
/// stays on the books as an abandoned run because it physically occupied
/// resources.
void EngineCore::abort_jobs_on_cloud(CloudId crashed) {
  // Victims come from the live set (no instance-wide sweep); sort so the
  // abort events keep firing in job-id order like the old full scan.
  victims_.clear();
  for (const soa::LiveIndex::Entry& e : live_) {
    if (pool_.alloc(e.slot) == crashed) victims_.push_back(e.id);
  }
  std::sort(victims_.begin(), victims_.end());
  for (const JobId id : victims_) {
    const std::int32_t slot = find_slot(id);
    if (trace_ != nullptr) {
      trace_close_span(slot);
      trace_instant(obs::TracePoint::kFault, slot, crashed, 0.0);
      ++run_index_[slot];
    }
    if (record_schedule_) {
      ActivityRecorder& rec = recorders_[slot];
      rec.close(now_);
      if (rec.has_history()) {
        abandoned_runs_.emplace_back(id, std::move(rec.current));
      }
      rec.current = RunRecord{};
    }
    pool_.alloc(slot) = kAllocUnassigned;
    pool_.rem_up(slot) = 0.0;
    pool_.rem_work(slot) = 0.0;
    pool_.rem_down(slot) = 0.0;
    pool_.active(slot) = Activity::kNone;
    // The abort changed the allocation without a directive: the next
    // keep/assign decision is new information and must be re-emitted.
    if (provenance_on_) last_dir_target_[slot] = kDirectiveNone;
    ++stats_.fault_aborts;
    push_fault_event(Event{EventKind::kFault, id, now_, crashed});
  }
}

/// Loss semantics: the message in flight on the hit direction of the
/// cloud's link at this instant is corrupted and must be retransmitted
/// from zero. A downlink loss keeps the execution progress (the result
/// still sits on the cloud); an uplink loss re-pays the whole upload.
/// Nothing in flight => the loss is unobservable and hits nobody.
void EngineCore::corrupt_in_flight_message(const FaultSpec& spec) {
  const Activity hit = spec.kind == FaultKind::kUplinkLoss
                           ? Activity::kUplink
                           : Activity::kDownlink;
  // Only an active job can be mid-transmission; active_ids_ is id-sorted,
  // so the first match is the lowest id, as with the old full scan.
  for (const std::int32_t slot : active_ids_) {
    if (pool_.alloc(slot) != spec.cloud || pool_.active(slot) != hit) {
      continue;
    }
    // The corrupted transmission physically used the link: its interval
    // stays recorded in the current run (quantity checks are >=).
    if (record_schedule_) recorders_[slot].close(now_);
    pool_.active(slot) = Activity::kNone;
    if (hit == Activity::kUplink) {
      pool_.rem_up(slot) = pool_.job(slot).up;
      ++stats_.uplink_retransmits;
    } else {
      pool_.rem_down(slot) = pool_.job(slot).down;
      ++stats_.downlink_retransmits;
    }
    ++stats_.message_losses;
    if (trace_ != nullptr) {
      trace_close_span(slot);
      trace_instant(hit == Activity::kUplink
                        ? obs::TracePoint::kUplinkLoss
                        : obs::TracePoint::kDownlinkLoss,
                    slot, spec.cloud, 0.0);
    }
    push_fault_event(Event{EventKind::kFault, pool_.job(slot).id, now_,
                           spec.cloud});
    break;  // one-port: at most one message per direction per cloud
  }
}

void EngineCore::push_fault_event(const Event& event) {
  events_.push_back(event);
  fault_log_.push_back(event);
}

bool EngineCore::step_rounds(std::uint64_t rounds) {
  if (rounds == 0) {
    while (!done()) step();
    return true;
  }
  for (std::uint64_t i = 0; i < rounds && !done(); ++i) step();
  return done();
}

void EngineCore::finish_into(SimResult& out) {
  // Streaming: the last completions of the run never saw another decision
  // round, so their slots still sit in the retire queue — harvest them.
  if (streaming_) flush_retired();
  // Counters mirroring SimStats are added in bulk here so the registry and
  // the returned stats are consistent by construction.
  if (metrics_ != nullptr) {
    metrics_->add(ids_->events, stats_.events);
    metrics_->add(ids_->decisions, stats_.decisions);
    metrics_->add(ids_->reassignments, stats_.reassignments);
    metrics_->add(ids_->preemptions, stats_.preemptions);
    metrics_->add(ids_->fault_aborts, stats_.fault_aborts);
    metrics_->add(ids_->uplink_retransmits, stats_.uplink_retransmits);
    metrics_->add(ids_->downlink_retransmits, stats_.downlink_retransmits);
    metrics_->add(ids_->message_losses, stats_.message_losses);
    metrics_->add(ids_->rejections, stats_.rejections);
    metrics_->add(ids_->sheds, stats_.sheds);
    metrics_->gauge_set(ids_->peak_live,
                        static_cast<double>(stats_.peak_live));
  }
  if (trace_ != nullptr) trace_->end_trace(now_);
  out.stats = stats_;
  // Swap rather than move: the caller's old buffers land in the core's
  // logs, where the next prepare() clears them for reuse — so a resident
  // (core, result) pair recycles capacity in both directions.
  out.fault_log.swap(fault_log_);
  out.admission_log.swap(admission_log_);
  const std::size_t total_jobs =
      streaming_ ? static_cast<std::size_t>(next_id_) : pool_.size();
  out.completions.clear();
  if (config_.record_completions) {
    // -1 marks rejected / shed jobs (they never completed).
    out.completions.assign(total_jobs, -1.0);
    if (streaming_) {
      for (const auto& [id, completion] : completion_log_) {
        out.completions[id] = completion;
      }
    } else {
      for (std::int32_t s = 0; s < static_cast<std::int32_t>(pool_.size());
           ++s) {
        if (pool_.done(s) != 0) {
          out.completions[pool_.job(s).id] = pool_.completion(s);
        }
      }
    }
  }
  if (config_.record_schedule) {
    out.schedule = Schedule(static_cast<int>(total_jobs));
    for (auto& [id, run] : abandoned_runs_) {
      out.schedule.job(id).abandoned.push_back(std::move(run));
    }
    if (streaming_) {
      // Retired jobs harvested their final run on the way out; rejected
      // ids keep an empty record, like never-started jobs do.
      for (auto& [id, run] : final_runs_) {
        out.schedule.job(id).final_run = std::move(run);
      }
    } else {
      for (std::int32_t s = 0; s < static_cast<std::int32_t>(pool_.size());
           ++s) {
        ActivityRecorder& rec = recorders_[s];
        rec.close(now_);
        out.schedule.job(pool_.job(s).id).final_run = std::move(rec.current);
      }
    }
  } else {
    out.schedule = Schedule();
  }
}

SimResult EngineCore::run() {
  while (!done()) step();
  SimResult out;
  finish_into(out);
  return out;
}

}  // namespace detail

SimResult simulate(const Instance& instance, Policy& policy,
                   const EngineConfig& config) {
  policy.reset(instance);
  detail::EngineCore core;
  core.prepare(instance, nullptr, policy, config);
  return core.run();
}

SimResult simulate_stream(const Instance& base, ArrivalStream& arrivals,
                          Policy& policy, const EngineConfig& config) {
  policy.reset(base);
  detail::EngineCore core;
  core.prepare(base, &arrivals, policy, config);
  return core.run();
}

}  // namespace ecs
