// policy.hpp - The event-triggered scheduling-policy interface.
//
// All the paper's heuristics (section V) are event-based: they reconsider
// their decisions only when a job is released or when an uplink, execution
// or downlink completes. At each such point the engine asks the policy for
// *directives*: for each live job, a target location and a priority.
//
//  * target = kAllocEdge        -> run locally on the origin edge processor;
//  * target = k >= 0            -> delegate to cloud processor k;
//  * target = kTargetKeep       -> keep the current allocation and progress.
//
// Changing a job's location discards its progress (the paper's re-execution
// rule). Priorities (lower value = more urgent) drive the engine's resource
// arbitration: at each event the engine walks jobs in priority order and
// activates each job's next needed activity if its processor/ports are
// free — this uniformly realizes preemption, one-port serialization and the
// uplink -> compute -> downlink pipeline for every policy.
//
// Jobs for which the policy returns no directive implicitly keep their
// allocation with the lowest priority (the engine stays work-conserving).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "obs/reason.hpp"
#include "sim/soa.hpp"
#include "sim/state.hpp"

namespace ecs {

/// Directive target sentinel: keep the job where it is, progress intact.
inline constexpr int kTargetKeep = -3;

struct Directive {
  JobId job = -1;
  int target = kTargetKeep;  ///< kAllocEdge, cloud index, or kTargetKeep
  double priority = 0.0;     ///< lower = scheduled first
  /// Why the policy chose this target (obs/reason.hpp). Purely diagnostic:
  /// the engine never branches on it — it only copies the code into the
  /// decision-provenance trace when provenance is enabled — so annotated
  /// and unannotated policies produce bit-identical schedules.
  ReasonCode reason = ReasonCode::kUnspecified;
};

/// Read-only view of the simulation passed to policies.
///
/// In the engine's streaming mode (simulate_stream) completed jobs retire
/// and their state slots are recycled, so a job id is no longer an index
/// into states(). slot(id) performs the translation; it is the identity
/// when the view was built without a slot window (materialized runs and
/// hand-made test views), so policies written against slot() behave
/// identically in both modes. Per-job policy workspaces must be keyed by
/// slot(id), never by id, to stay O(live) under streaming.
class SimView {
 public:
  /// `live_sorted`, when provided (the engine always does), is the list of
  /// released, unfinished job ids sorted ascending — it lets live_jobs()
  /// answer in O(live) instead of scanning every job state.
  /// `id_map` (streaming engine only) translates a job id to its state
  /// slot; ids absent from the map are retired/rejected and have no state.
  SimView(const Instance& instance, const std::vector<JobState>& states,
          Time now, const std::vector<JobId>* live_sorted = nullptr,
          const soa::IdMap* id_map = nullptr)
      : instance_(&instance),
        states_(&states),
        live_sorted_(live_sorted),
        id_map_(id_map),
        now_(now) {}

  [[nodiscard]] const Instance& instance() const noexcept {
    return *instance_;
  }
  [[nodiscard]] const Platform& platform() const noexcept {
    return instance_->platform;
  }
  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] const std::vector<JobState>& states() const noexcept {
    return *states_;
  }
  /// Index of `id`'s state in states(). Identity without an id map;
  /// negative when the job is retired, rejected or unknown (streaming).
  /// Always >= 0 for live ids and for the jobs of the current event batch.
  [[nodiscard]] std::int32_t slot(JobId id) const noexcept {
    if (id_map_ == nullptr) return static_cast<std::int32_t>(id);
    return id_map_->find(id);
  }
  [[nodiscard]] const JobState& state(JobId id) const {
    return states_->at(static_cast<std::size_t>(slot(id)));
  }

  /// Ids of released, unfinished jobs, ascending. Non-owning: the span
  /// aliases the engine's sorted live index (no copy — this sits on every
  /// policy's hot path) and is valid only while the view is. When the view
  /// was built without a live index (hand-made views in tests), the list is
  /// derived once from the states and cached in the view.
  [[nodiscard]] std::span<const JobId> live_jobs() const {
    if (live_sorted_ != nullptr) return *live_sorted_;
    if (!fallback_built_) {
      fallback_live_.clear();
      for (const JobState& s : *states_) {
        if (s.live()) fallback_live_.push_back(s.job.id);
      }
      fallback_built_ = true;
    }
    return fallback_live_;
  }

 private:
  const Instance* instance_;
  const std::vector<JobState>* states_;
  const std::vector<JobId>* live_sorted_ = nullptr;
  const soa::IdMap* id_map_ = nullptr;  ///< streaming id -> slot map
  mutable std::vector<JobId> fallback_live_;  ///< lazy; null live_sorted_ only
  mutable bool fallback_built_ = false;
  Time now_;
};

/// Base class for scheduling policies. Policies are stateful across one
/// simulation (reset() is called at the start) but must not retain state
/// across simulations.
///
/// decide() appends into a caller-owned buffer that the engine clears and
/// reuses round after round; together with the per-policy workspaces
/// (reused order/bitmap buffers and a resettable ResourceClock, see
/// DESIGN.md §6) this makes the steady-state hot path allocation-free.
class Policy {
 public:
  virtual ~Policy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once before the simulation starts.
  virtual void reset(const Instance& instance) { (void)instance; }

  /// Called at every event batch. `events` holds everything that fired at
  /// the current time (several completions and releases can coincide).
  /// Appends the directives to `out`; the caller passes it in empty (the
  /// engine clears and reuses one buffer across rounds) and `out` must not
  /// alias any state the policy reads.
  virtual void decide(const SimView& view, const std::vector<Event>& events,
                      std::vector<Directive>& out) = 0;

  /// Convenience for tests and tools: decide() into a fresh vector.
  [[nodiscard]] std::vector<Directive> decide_copy(
      const SimView& view, const std::vector<Event>& events) {
    std::vector<Directive> out;
    decide(view, events, out);
    return out;
  }
};

}  // namespace ecs
