#include "sim/faults.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <tuple>

namespace ecs {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kUplinkLoss:
      return "uplink-loss";
    case FaultKind::kDownlinkLoss:
      return "downlink-loss";
  }
  return "unknown";
}

FaultKind parse_fault_kind(const std::string& name) {
  if (name == "crash") return FaultKind::kCrash;
  if (name == "uplink-loss") return FaultKind::kUplinkLoss;
  if (name == "downlink-loss") return FaultKind::kDownlinkLoss;
  throw std::invalid_argument("unknown fault kind: '" + name + "'");
}

void FaultPlan::normalize() {
  std::sort(faults.begin(), faults.end(),
            [](const FaultSpec& a, const FaultSpec& b) {
              return std::tie(a.begin, a.cloud, a.kind, a.end) <
                     std::tie(b.begin, b.cloud, b.kind, b.end);
            });
}

std::vector<std::string> validate_fault_plan(const FaultPlan& plan,
                                             const Platform& platform) {
  std::vector<std::string> problems;
  const int pc = platform.cloud_count();
  // Last crash window seen per cloud, for the overlap check (the plan must
  // be normalized for this to be exact; an unsorted plan is reported too).
  std::vector<Time> last_crash_end(static_cast<std::size_t>(std::max(pc, 0)),
                                   -kTimeInfinity);
  Time last_begin = -kTimeInfinity;
  for (std::size_t i = 0; i < plan.faults.size(); ++i) {
    const FaultSpec& f = plan.faults[i];
    std::ostringstream os;
    os << "fault #" << i << " (" << to_string(f.kind) << ", cloud "
       << f.cloud << ", [" << f.begin << ", " << f.end << ")): ";
    if (f.cloud < 0 || f.cloud >= pc) {
      problems.push_back(os.str() + "cloud index out of range");
      continue;
    }
    if (f.begin < last_begin) {
      problems.push_back(os.str() + "plan is not normalized (call "
                                    "FaultPlan::normalize first)");
    }
    last_begin = f.begin;
    if (f.kind == FaultKind::kCrash) {
      if (!(f.end > f.begin)) {
        problems.push_back(os.str() + "crash repair must end after it began");
        continue;
      }
      if (f.begin < last_crash_end[f.cloud]) {
        problems.push_back(os.str() +
                           "overlaps the previous crash window of this cloud");
      }
      last_crash_end[f.cloud] =
          std::max(last_crash_end[f.cloud], f.end);
    } else {
      if (f.end != f.begin) {
        problems.push_back(os.str() + "a message loss is instantaneous "
                                      "(end must equal begin)");
      }
    }
  }
  return problems;
}

void require_valid_fault_plan(const FaultPlan& plan,
                              const Platform& platform) {
  const auto problems = validate_fault_plan(plan, platform);
  if (problems.empty()) return;
  std::string all = "invalid fault plan:";
  for (const std::string& p : problems) {
    all += "\n  - ";
    all += p;
  }
  throw std::invalid_argument(all);
}

FaultPlan make_fault_plan(int cloud_count, const FaultConfig& config,
                          Rng& rng) {
  if (cloud_count < 0) {
    throw std::invalid_argument("make_fault_plan: negative cloud count");
  }
  if (config.crash_rate < 0.0 || config.loss_rate < 0.0) {
    throw std::invalid_argument("make_fault_plan: rates must be >= 0");
  }
  if (!(config.horizon > 0.0) ||
      (config.crash_rate > 0.0 && !(config.mean_repair > 0.0))) {
    throw std::invalid_argument(
        "make_fault_plan: horizon and mean_repair must be positive");
  }
  FaultPlan plan;
  for (CloudId k = 0; k < cloud_count; ++k) {
    if (config.crash_rate > 0.0) {
      double t = rng.exponential(1.0 / config.crash_rate);
      while (t < config.horizon) {
        const double repair =
            rng.uniform(0.5 * config.mean_repair, 1.5 * config.mean_repair);
        plan.faults.push_back(
            FaultSpec{FaultKind::kCrash, k, t, t + repair});
        t += repair + rng.exponential(1.0 / config.crash_rate);
      }
    }
    if (config.loss_rate > 0.0) {
      for (const FaultKind kind :
           {FaultKind::kUplinkLoss, FaultKind::kDownlinkLoss}) {
        double t = rng.exponential(2.0 / config.loss_rate);
        while (t < config.horizon) {
          plan.faults.push_back(FaultSpec{kind, k, t, t});
          t += rng.exponential(2.0 / config.loss_rate);
        }
      }
    }
  }
  plan.normalize();
  return plan;
}

}  // namespace ecs
