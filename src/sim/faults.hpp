// faults.hpp - Unannounced fault injection for the edge-cloud simulator.
//
// Instance::cloud_outages models *announced* unavailability: every policy
// sees the windows up front (projection.cpp plans around them) and in-flight
// activities merely suspend at the boundaries, keeping their progress. Real
// platforms also fail without notice — a cloud machine is revoked mid-job
// (Mäcker et al., "Cost-efficient Scheduling on Machines from the Cloud")
// or the shared link drops a message. A FaultPlan models exactly that:
//
//  * kCrash: cloud k dies at `begin` and is repaired at `end`. Every job
//    allocated to k at `begin` is aborted — the machine's memory is gone,
//    so ALL progress (uplink, execution, downlink) is discarded per the
//    paper's re-execution rule and the job returns to the unassigned state.
//    While down, k serves neither computation nor communication.
//  * kUplinkLoss / kDownlinkLoss: at instant `begin` (`end == begin`), the
//    message currently in flight on that direction of cloud k's link is
//    corrupted; the transmission must restart from zero. Execution progress
//    survives a downlink loss (the result still sits on the cloud), whereas
//    an uplink loss re-pays the whole upload. A loss instant with nothing
//    in flight hits nobody and is unobservable.
//
// The plan is owned by the ENGINE (EngineConfig::faults), never by the
// Instance, so no policy can peek at future faults: a policy learns of a
// fault only when the corresponding EventKind::kFault / kRecovery event
// fires. Plans are plain data — deterministic, serializable (trace_io) and
// replayable byte-for-byte.
#pragma once

#include <string>
#include <vector>

#include "core/job.hpp"
#include "core/platform.hpp"
#include "core/time.hpp"
#include "util/rng.hpp"

namespace ecs {

enum class FaultKind { kCrash, kUplinkLoss, kDownlinkLoss };

[[nodiscard]] std::string to_string(FaultKind kind);
/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] FaultKind parse_fault_kind(const std::string& name);

struct FaultSpec {
  FaultKind kind = FaultKind::kCrash;
  CloudId cloud = 0;
  Time begin = 0.0;  ///< crash start / loss instant
  Time end = 0.0;    ///< repair completion; == begin for losses

  [[nodiscard]] bool operator==(const FaultSpec&) const = default;
};

/// A deterministic script of unannounced faults. Kept sorted by
/// (begin, cloud, kind) via normalize(); the engine consumes it in order.
struct FaultPlan {
  std::vector<FaultSpec> faults;

  [[nodiscard]] bool empty() const noexcept { return faults.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return faults.size(); }

  /// Sorts the specs into the canonical engine consumption order.
  void normalize();

  [[nodiscard]] bool operator==(const FaultPlan&) const = default;
};

/// Checks the plan against a platform: cloud indices in range, positive
/// crash durations, zero-length losses, and per-cloud crash windows that do
/// not overlap. Returns the problems found (empty == well-formed).
[[nodiscard]] std::vector<std::string> validate_fault_plan(
    const FaultPlan& plan, const Platform& platform);

/// Convenience: throws std::invalid_argument when the plan is invalid.
void require_valid_fault_plan(const FaultPlan& plan, const Platform& platform);

/// Knobs for the seeded generator. Rates are per cloud per unit of time, so
/// the expected number of crashes on one cloud is roughly
/// crash_rate * horizon (repairs eat into the exposure window).
struct FaultConfig {
  double crash_rate = 0.0;    ///< expected crashes per cloud per unit time
  double mean_repair = 50.0;  ///< expected repair duration of one crash
  double loss_rate = 0.0;     ///< expected message corruptions per cloud
                              ///< per unit time (uplink and downlink each
                              ///< drawn at half this rate)
  double horizon = 1000.0;    ///< time span covered by the plan
};

/// Draws a fault plan; deterministic given the Rng state. Crash gaps and
/// loss gaps are exponential (memoryless revocations), repair durations
/// uniform around mean_repair. Zero rates yield an empty plan.
[[nodiscard]] FaultPlan make_fault_plan(int cloud_count,
                                        const FaultConfig& config, Rng& rng);

}  // namespace ecs
