#include "sim/batch.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "util/parallel.hpp"
#include "sim/engine_core.hpp"
#include "sim/policy.hpp"

namespace ecs {

namespace {
constexpr std::size_t kIdle = static_cast<std::size_t>(-1);
}  // namespace

struct BatchEngine::Worker {
  /// One resident world slot: every buffer below survives recycling, so a
  /// steady-state world launch allocates nothing.
  struct World {
    detail::EngineCore core;
    Instance instance;
    SimResult result;
    WorldSetup setup;
    /// Lazily built policy table. Owned by the SLOT, not the worker: a
    /// policy object is stateful across decide() calls, and a worker
    /// interleaves its resident worlds mid-run — two worlds sharing one
    /// policy instance would corrupt each other the moment both pick the
    /// same table entry.
    std::vector<std::unique_ptr<Policy>> policies;
    std::size_t index = kIdle;  ///< queued-world index, kIdle when free
    std::chrono::steady_clock::time_point t0;
  };

  std::vector<std::unique_ptr<World>> worlds;
};

BatchEngine::BatchEngine(std::size_t policy_count, PolicyFactory factory,
                         BatchOptions options)
    : policy_count_(policy_count),
      factory_(std::move(factory)),
      options_(options) {
  if (!factory_) {
    throw std::invalid_argument("BatchEngine: a policy factory is required");
  }
}

BatchEngine::~BatchEngine() = default;

void BatchEngine::run(std::size_t world_count, const WorldFn& make_world,
                      const WorldResultFn& on_result) {
  if (world_count == 0) return;
  const unsigned threads =
      options_.threads != 0 ? options_.threads : default_thread_count();
  const std::size_t workers =
      std::min<std::size_t>(std::max(threads, 1u), world_count);
  while (workers_.size() < workers) {
    workers_.push_back(std::make_unique<Worker>());
  }
  std::atomic<std::size_t> next_world{0};
  parallel_for(
      workers,
      [&](std::size_t w) {
        run_worker(*workers_[w], world_count, next_world, make_world,
                   on_result);
      },
      static_cast<unsigned>(workers));
}

void BatchEngine::run_worker(Worker& worker, std::size_t world_count,
                             std::atomic<std::size_t>& next_world,
                             const WorldFn& make_world,
                             const WorldResultFn& on_result) {
  const std::size_t slots =
      std::max<std::size_t>(options_.worlds_per_thread, 1);
  while (worker.worlds.size() < slots) {
    worker.worlds.push_back(std::make_unique<Worker::World>());
  }
  // A previous run() that aborted on an exception may have left worlds
  // mid-flight; their cores re-prepare from scratch, so just mark idle.
  for (auto& world : worker.worlds) {
    world->policies.resize(policy_count_);
    world->index = kIdle;
  }

  const std::uint64_t rounds = std::max<std::uint64_t>(
      options_.rounds_per_visit, 1);
  bool drained = false;  // the shared queue has run dry
  // Launches the next queued world into `world`; false when none remain.
  const auto launch = [&](Worker::World& world) {
    if (drained) return false;
    const std::size_t index =
        next_world.fetch_add(1, std::memory_order_relaxed);
    if (index >= world_count) {
      drained = true;
      return false;
    }
    world.index = index;
    world.setup = WorldSetup{};
    make_world(index, world.instance, world.setup);
    if (world.setup.policy >= policy_count_) {
      throw std::out_of_range("BatchEngine: world setup selected policy " +
                              std::to_string(world.setup.policy) +
                              " of a table of " +
                              std::to_string(policy_count_));
    }
    std::unique_ptr<Policy>& policy = world.policies[world.setup.policy];
    if (policy == nullptr) policy = factory_(world.setup.policy);
    world.t0 = std::chrono::steady_clock::now();
    // Same order as simulate(): reset, then prepare, then step.
    policy->reset(world.instance);
    world.core.prepare(world.instance, nullptr, *policy, world.setup.config);
    return true;
  };

  while (true) {
    bool any_live = false;
    for (std::size_t s = 0; s < slots; ++s) {
      Worker::World& world = *worker.worlds[s];
      if (world.index == kIdle && !launch(world)) continue;
      any_live = true;
      if (!world.core.step_rounds(rounds)) continue;
      world.core.finish_into(world.result);
      const auto t1 = std::chrono::steady_clock::now();
      const double wall =
          std::chrono::duration<double>(t1 - world.t0).count();
      const std::size_t index = world.index;
      world.index = kIdle;  // recycled even if the callback throws
      on_result(index, world.instance, world.result, wall);
    }
    if (!any_live) return;
  }
}

}  // namespace ecs
