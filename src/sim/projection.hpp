// projection.hpp - Completion-time projection for online heuristics.
//
// The paper's heuristics need to estimate when a job would finish on a
// candidate resource. Two levels of fidelity are provided:
//
//  * `uncontended_completion` ignores other jobs entirely: it is the
//    earliest conceivable finish time, matching the O(1) estimate behind
//    the complexity figures of Greedy / SRPT (section V-B, V-C).
//
//  * `ResourceClock` + `project` performs a non-preemptive list projection:
//    per-resource next-free counters (edge/cloud CPUs and the four one-port
//    directions) are advanced as candidate jobs are committed in priority
//    order. SSF-EDF's feasibility test (section V-D) walks jobs in deadline
//    order through this projection.
//
// Both honour the re-execution rule: projecting a job onto its *current*
// allocation uses its remaining amounts, any other target uses the full
// amounts from scratch.
#pragma once

#include <cstdint>
#include <vector>

#include "core/platform.hpp"
#include "sim/state.hpp"

namespace ecs {

/// Completion time of an activity of length `duration` started at `start`
/// when the resource is unavailable during `outages` (may be nullptr or
/// empty): processing suspends inside outage windows and resumes after
/// them — the engine's preempt-and-resume semantics.
[[nodiscard]] Time advance_through_outages(const IntervalSet* outages,
                                           Time start, double duration);

/// Earliest finish time of `state`'s job on `target`, starting at `now`,
/// assuming no contention. `target` is kAllocEdge or a cloud index.
[[nodiscard]] Time uncontended_completion(const Platform& platform,
                                          const JobState& state, int target,
                                          Time now);

/// Outage-aware overload: accounts for the announced availability windows
/// of the target cloud processor (Instance::cloud_outages).
[[nodiscard]] Time uncontended_completion(const Instance& instance,
                                          const JobState& state, int target,
                                          Time now);

/// Best uncontended finish time over all resources (origin edge, the
/// fastest cloud processor, or the job's current allocation).
[[nodiscard]] Time best_uncontended_completion(const Platform& platform,
                                               const JobState& state,
                                               Time now);

/// Index of the fastest cloud processor, or -1 when the platform has none.
[[nodiscard]] CloudId fastest_cloud(const Platform& platform);

/// Per-resource next-free times used by the list projection.
///
/// The clock is reusable: policies bind() it once per simulation (sizing
/// the per-resource arrays, capturing the outage windows) and then reset()
/// it at every projection pass. reset() is O(1) — each per-resource entry
/// is epoch-tagged, an entry whose tag predates the current epoch reads as
/// `now` (i.e. free), and commit() re-tags exactly the entries it writes.
/// A freshly reset() clock is therefore indistinguishable from a newly
/// constructed one, with no per-resource refill and no allocation.
class ResourceClock {
 public:
  /// Unbound clock; bind() must run before any projection.
  ResourceClock() = default;

  ResourceClock(const Platform& platform, Time now);

  /// Outage-aware construction: projections suspend inside the announced
  /// availability windows of each cloud processor, exactly mirroring the
  /// engine's enforcement.
  ResourceClock(const Instance& instance, Time now);

  /// Sizes the per-resource arrays for `platform` and resets to `now`.
  /// Allocates (once); reset() afterwards never does.
  void bind(const Platform& platform, Time now);

  /// Outage-aware bind: also captures `instance.cloud_outages` (the
  /// instance must outlive the clock's use).
  void bind(const Instance& instance, Time now);

  /// Restarts the clock at `now` with every resource free. O(1): bumps the
  /// epoch so all stale entries read as `now`.
  void reset(Time now) noexcept;

  /// True once bind() (or a sizing constructor) has run.
  [[nodiscard]] bool bound() const noexcept { return epoch_ != 0; }

  /// Completion time of the job on `target` given current clocks; does not
  /// modify the clocks.
  [[nodiscard]] Time project(const Platform& platform, const JobState& state,
                             int target) const;

  /// Commits the job to `target`: advances the involved clocks and returns
  /// the completion time.
  Time commit(const Platform& platform, const JobState& state, int target);

  /// Target (kAllocEdge or cloud id) minimizing the projected completion,
  /// together with that completion time.
  [[nodiscard]] std::pair<int, Time> best_target(const Platform& platform,
                                                 const JobState& state) const;

  [[nodiscard]] Time edge_cpu(EdgeId j) const {
    return rd(edge_cpu_, static_cast<std::size_t>(j));
  }
  [[nodiscard]] Time cloud_cpu(CloudId k) const {
    return rd(cloud_cpu_, static_cast<std::size_t>(k));
  }

  /// True when the job's *next* activity on `target` could begin
  /// immediately (at `now`) given the current clocks — i.e. the job would
  /// not merely be queued behind earlier commitments. Policies use this to
  /// restrict explicit (re)allocation directives to jobs that actually
  /// start, leaving queued jobs' progress untouched.
  [[nodiscard]] bool starts_now(const Platform& platform,
                                const JobState& state, int target,
                                Time now) const;

 private:
  struct Projection {
    Time up_end;
    Time exec_end;
    Time done;
  };
  /// One per-resource lane: next-free times plus the epoch each entry was
  /// written in. A stale epoch means "never touched since reset" = free.
  struct Lane {
    std::vector<Time> time;
    std::vector<std::uint32_t> epoch;
  };
  // Unchecked indexing: these sit in the innermost projection loops and
  // every caller derives `i` from a validated target / platform bound.
  [[nodiscard]] Time rd(const Lane& lane, std::size_t i) const {
    return lane.epoch[i] == epoch_ ? lane.time[i] : now_;
  }
  void wr(Lane& lane, std::size_t i, Time t) {
    lane.time[i] = t;
    lane.epoch[i] = epoch_;
  }
  [[nodiscard]] Projection project_detail(const Platform& platform,
                                          const JobState& state,
                                          int target) const;
  [[nodiscard]] const IntervalSet* outages_of(CloudId k) const {
    return outages_ == nullptr || outages_->empty() ? nullptr
                                                    : &outages_->at(k);
  }

  Lane edge_cpu_;
  Lane edge_send_;
  Lane edge_recv_;
  Lane cloud_cpu_;
  Lane cloud_send_;
  Lane cloud_recv_;
  const std::vector<IntervalSet>* outages_ = nullptr;
  Time now_ = 0.0;
  std::uint32_t epoch_ = 0;  ///< 0 = unbound; bind() starts at 1
};

/// Remaining amounts of the job if (re)started on `target`:
/// {uplink time, work, downlink time}. Applies the re-execution rule.
struct RemainingAmounts {
  double up = 0.0;
  double work = 0.0;
  double down = 0.0;
};
[[nodiscard]] RemainingAmounts remaining_on(const JobState& state, int target);

}  // namespace ecs
