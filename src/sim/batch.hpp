// batch.hpp - Many-worlds batch driver over the reusable engine core.
//
// A "world" is one complete simulation run: an instance, a policy and an
// engine configuration. BatchEngine owns a fixed set of resident world
// slots per worker thread; each slot keeps an EngineCore, an Instance
// buffer and a SimResult buffer alive across runs, so a completed world is
// recycled for the next queued run with zero steady-state allocations —
// the cost structure a 1000-replication sweep point wants, where the
// legacy path constructed an engine, a policy and every internal buffer
// from scratch per run.
//
// Each worker steps its resident worlds round-robin in bounded chunks of
// decision rounds (BatchOptions::rounds_per_visit), pulling the next
// queued world from a shared counter whenever a slot drains. Stepping is
// chunked purely for slot recycling and progress interleaving: a world's
// result depends only on its (instance, policy, config) triple, never on
// chunk size or scheduling, so a batched run is bit-identical to
// simulate() on the same triple (tests/test_engine_equivalence.cpp pins
// this, and the reuse contract, exactly).
//
// Results are handed to a caller callback on the worker thread, with the
// world's instance still alive — callers compute metrics or validate
// there, then the slot is recycled. Callbacks run concurrently for
// distinct worlds; callers write into pre-sized per-world output slots
// (like exp/sweep.cpp does) to stay deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/platform.hpp"
#include "sim/engine.hpp"

namespace ecs {

class Policy;

struct BatchOptions {
  /// Worker threads; 0 = default_thread_count().
  unsigned threads = 0;
  /// Resident world slots per worker. More slots smooth out run-length
  /// imbalance between queued worlds at the cost of memory; 1 degrades to
  /// run-to-completion per world.
  std::uint32_t worlds_per_thread = 2;
  /// Decision rounds a world advances per visit before the worker moves to
  /// its next resident slot. Never affects results.
  std::uint64_t rounds_per_visit = 512;
};

/// What a queued world runs. `policy` indexes the policy table the driver
/// builds per resident world slot via its PolicyFactory.
struct WorldSetup {
  std::size_t policy = 0;
  EngineConfig config;
};

/// Fills world `index`: assign the instance into the resident buffer (its
/// capacity is reused across runs) and describe the run in `setup`.
/// Called on a worker thread; must be thread-safe for distinct indices.
using WorldFn =
    std::function<void(std::size_t index, Instance& instance,
                       WorldSetup& setup)>;

/// Consumes a finished world on the worker thread, before its slot is
/// recycled: `instance` is the world's instance, `result` the harvested
/// run (callers may move from it), `wall_seconds` the world's
/// prepare-to-finish wall time. Must be thread-safe for distinct indices.
using WorldResultFn =
    std::function<void(std::size_t index, const Instance& instance,
                       SimResult& result, double wall_seconds)>;

/// Builds policy-table entry `policy` for one resident world slot. Each
/// slot owns a private table (policies are single-threaded AND stateful
/// across decide() calls, so concurrently-stepped worlds can never share
/// one), constructed lazily and reused across every run the slot executes
/// — reset() is called before each run, per the Policy contract.
using PolicyFactory =
    std::function<std::unique_ptr<Policy>(std::size_t policy)>;

class BatchEngine {
 public:
  BatchEngine(std::size_t policy_count, PolicyFactory factory,
              BatchOptions options = {});
  ~BatchEngine();
  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  /// Runs worlds [0, world_count): every world is built with `make_world`,
  /// simulated to completion and handed to `on_result`. Returns when all
  /// worlds finished. The first exception thrown by a world (engine error,
  /// callback validation failure) aborts the batch and is rethrown, like
  /// parallel_for. Worker state (cores, policy tables, buffers) persists
  /// across run() calls, so repeated sweep points keep their capacity.
  void run(std::size_t world_count, const WorldFn& make_world,
           const WorldResultFn& on_result);

 private:
  struct Worker;

  void run_worker(Worker& worker, std::size_t world_count,
                  std::atomic<std::size_t>& next_world,
                  const WorldFn& make_world, const WorldResultFn& on_result);

  std::size_t policy_count_;
  PolicyFactory factory_;
  BatchOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace ecs
