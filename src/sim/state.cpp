#include "sim/state.hpp"

namespace ecs {

std::string to_string(Activity activity) {
  switch (activity) {
    case Activity::kNone:
      return "none";
    case Activity::kUplink:
      return "uplink";
    case Activity::kCompute:
      return "compute";
    case Activity::kDownlink:
      return "downlink";
  }
  return "unknown";
}

std::string to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kRelease:
      return "release";
    case EventKind::kUplinkDone:
      return "uplink-done";
    case EventKind::kComputeDone:
      return "compute-done";
    case EventKind::kDownlinkDone:
      return "downlink-done";
    case EventKind::kFault:
      return "fault";
    case EventKind::kRecovery:
      return "recovery";
  }
  return "unknown";
}

}  // namespace ecs
