#include "sim/state.hpp"

#include <algorithm>

namespace ecs {

void JobState::advance_progress(Time to) noexcept {
  const double dt = std::max(0.0, to - last_update);
  switch (active) {
    case Activity::kUplink:
      rem_up = clamp_amount(rem_up - dt * rate);
      break;
    case Activity::kCompute:
      rem_work = clamp_amount(rem_work - dt * rate);
      break;
    case Activity::kDownlink:
      rem_down = clamp_amount(rem_down - dt * rate);
      break;
    case Activity::kNone:
      return;  // idle: nothing progresses, the anchor stays put
  }
  last_update = to;
}

std::string to_string(Activity activity) {
  switch (activity) {
    case Activity::kNone:
      return "none";
    case Activity::kUplink:
      return "uplink";
    case Activity::kCompute:
      return "compute";
    case Activity::kDownlink:
      return "downlink";
  }
  return "unknown";
}

std::string to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kRelease:
      return "release";
    case EventKind::kUplinkDone:
      return "uplink-done";
    case EventKind::kComputeDone:
      return "compute-done";
    case EventKind::kDownlinkDone:
      return "downlink-done";
    case EventKind::kFault:
      return "fault";
    case EventKind::kRecovery:
      return "recovery";
  }
  return "unknown";
}

}  // namespace ecs
