// log.hpp - Lightweight leveled logging to stderr.
//
// The simulator itself never logs on hot paths; logging is for the
// experiment harness (progress lines) and for validator diagnostics.
#pragma once

#include <optional>
#include <sstream>
#include <string>

namespace ecs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Parses "debug" / "info" / "warn" / "error" (what --log-level= accepts);
/// nullopt on anything else.
[[nodiscard]] std::optional<LogLevel> parse_log_level(const std::string& name);

/// Emits one line to stderr with a level prefix. Thread-safe.
void log_message(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

#define ECS_LOG_DEBUG ::ecs::detail::LogLine(::ecs::LogLevel::kDebug)
#define ECS_LOG_INFO ::ecs::detail::LogLine(::ecs::LogLevel::kInfo)
#define ECS_LOG_WARN ::ecs::detail::LogLine(::ecs::LogLevel::kWarn)
#define ECS_LOG_ERROR ::ecs::detail::LogLine(::ecs::LogLevel::kError)

}  // namespace ecs
