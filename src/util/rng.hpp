// rng.hpp - Deterministic random number generation for reproducible
// simulations.
//
// All randomness in the library flows through an `ecs::Rng` instance so that
// every experiment is bit-reproducible given a seed. Replications of a sweep
// point derive independent streams with `Rng::fork` / `derive_seed`, which
// mixes the base seed with a point/replication tag (SplitMix64 finalizer).
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace ecs {

/// Mixes a 64-bit value through the SplitMix64 finalizer. Used to derive
/// statistically independent seeds from (base seed, tag) pairs.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

/// Derives a child seed from a base seed and an arbitrary tag.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base,
                                        std::uint64_t tag) noexcept;

/// Hashes a string tag (e.g. an experiment name) into a 64-bit value so that
/// seeds can be derived from human-readable labels.
[[nodiscard]] std::uint64_t hash_tag(std::string_view tag) noexcept;

/// Seeded pseudo-random generator wrapping std::mt19937_64 with convenience
/// draws for the distributions used by the workload generators.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// The seed this generator was constructed with.
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Creates an independent child generator; children with distinct tags
  /// produce independent streams.
  [[nodiscard]] Rng fork(std::uint64_t tag) const {
    return Rng(derive_seed(seed_, tag));
  }

  /// Uniform real in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Normal draw with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev);

  /// Normal draw truncated (by resampling, capped, then clamped) to
  /// [lo, +inf). Used for job durations that must stay positive.
  [[nodiscard]] double truncated_normal(double mean, double stddev, double lo);

  /// Bernoulli draw with probability p of true.
  [[nodiscard]] bool bernoulli(double p);

  /// Exponential draw with the given mean (memoryless inter-arrival gaps;
  /// Poisson arrivals and fault processes). Requires mean > 0.
  [[nodiscard]] double exponential(double mean);

  /// Raw 64-bit draw.
  [[nodiscard]] std::uint64_t next_u64() { return engine_(); }

  /// Access to the underlying engine for std distributions.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace ecs
