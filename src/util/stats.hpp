// stats.hpp - Descriptive statistics over samples of doubles.
//
// Used by the experiment harness to aggregate per-replication metrics
// (e.g. the max-stretch of each simulated instance) into the mean /
// deviation rows that the paper's figures plot.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace ecs {

/// Streaming accumulator (Welford) for mean and variance plus extrema.
/// Numerically stable for long runs of replications.
class Accumulator {
 public:
  void add(double x) noexcept;
  void merge(const Accumulator& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] double mean() const noexcept;
  /// Sample variance (n-1 denominator); 0 when fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double sum() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Summary of a finished sample: all the order statistics the reporting
/// layer prints. Computed in one pass over a copy of the data.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Computes the full summary of a sample. Empty input yields a
/// default-initialized Summary with count == 0.
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Linear-interpolated percentile of a sample. An empty sample yields
/// quiet NaN; q outside [0, 1] (or NaN) throws std::invalid_argument —
/// both guards hold in release builds too.
[[nodiscard]] double percentile(std::span<const double> xs, double q);

/// Formats a double with the given precision, trimming trailing zeros.
[[nodiscard]] std::string format_double(double x, int precision = 4);

}  // namespace ecs
