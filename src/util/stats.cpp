#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>

namespace ecs {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel variance combination.
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }

double Accumulator::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Accumulator::min() const noexcept { return n_ == 0 ? 0.0 : min_; }

double Accumulator::max() const noexcept { return n_ == 0 ? 0.0 : max_; }

double Accumulator::sum() const noexcept { return sum_; }

double percentile(std::span<const double> xs, double q) {
  // Unconditional guards: the old assert-only checks vanished in release
  // builds, turning an empty span into an out-of-bounds read and an
  // out-of-range q into a silent extrapolation.
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (!(q >= 0.0 && q <= 1.0)) {  // negated to also catch NaN
    throw std::invalid_argument("percentile: q must be in [0, 1], got " +
                                std::to_string(q));
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  Accumulator acc;
  for (double x : xs) acc.add(x);
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.p25 = percentile(xs, 0.25);
  s.median = percentile(xs, 0.50);
  s.p75 = percentile(xs, 0.75);
  s.p95 = percentile(xs, 0.95);
  return s;
}

std::string format_double(double x, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, x);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace ecs
