#include "util/args.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace ecs {
namespace {

bool looks_like_flag(const std::string& s) {
  return s.size() > 2 && s[0] == '-' && s[1] == '-';
}

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

[[noreturn]] void bad_number(const std::string& key, const std::string& value,
                             const char* expected) {
  throw std::invalid_argument("--" + key + ": expected " + expected +
                              ", got \"" + value + "\"");
}

/// Strict integer conversion: the whole token must parse (no trailing
/// garbage, no partial reads like "10x" -> 10) and fit in int64.
std::int64_t parse_int(const std::string& key, const std::string& value) {
  const char* begin = value.c_str();
  char* end = nullptr;
  errno = 0;
  const std::int64_t out = std::strtoll(begin, &end, 10);
  if (end == begin || *end != '\0') bad_number(key, value, "an integer");
  if (errno == ERANGE) bad_number(key, value, "an integer in int64 range");
  return out;
}

/// Strict floating-point conversion, same whole-token rule.
double parse_double(const std::string& key, const std::string& value) {
  const char* begin = value.c_str();
  char* end = nullptr;
  errno = 0;
  const double out = std::strtod(begin, &end);
  if (end == begin || *end != '\0') bad_number(key, value, "a number");
  if (errno == ERANGE && (out == 0.0 || out == HUGE_VAL || out == -HUGE_VAL)) {
    bad_number(key, value, "a number in double range");
  }
  return out;
}

}  // namespace

Args Args::parse(int argc, const char* const* argv) {
  Args args;
  if (argc > 0) args.program_ = argv[0];
  bool rest_positional = false;
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    if (rest_positional) {
      args.positional_.push_back(std::move(tok));
      continue;
    }
    if (tok == "--") {
      rest_positional = true;
      continue;
    }
    if (!looks_like_flag(tok)) {
      args.positional_.push_back(std::move(tok));
      continue;
    }
    std::string key = tok.substr(2);
    std::string value;
    const auto eq = key.find('=');
    if (eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      value = argv[++i];
    }
    args.values_[key] = value;
  }
  return args;
}

bool Args::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::optional<std::string> Args::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Args::get_or(const std::string& key,
                         const std::string& fallback) const {
  return get(key).value_or(fallback);
}

std::int64_t Args::get_int(const std::string& key,
                           std::int64_t fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) return fallback;  // absent or bare --flag
  return parse_int(key, *v);
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) return fallback;  // absent or bare --flag
  return parse_double(key, *v);
}

bool Args::get_bool(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  if (v->empty()) return true;  // bare --flag
  const std::string lower = to_lower(*v);
  return !(lower == "0" || lower == "false" || lower == "no" ||
           lower == "off");
}

std::vector<double> Args::get_double_list(
    const std::string& key, const std::vector<double>& fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) return fallback;
  std::vector<double> out;
  std::stringstream ss(*v);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(parse_double(key, item));
  }
  return out.empty() ? fallback : out;
}

std::vector<std::int64_t> Args::get_int_list(
    const std::string& key, const std::vector<std::int64_t>& fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) return fallback;
  std::vector<std::int64_t> out;
  std::stringstream ss(*v);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(parse_int(key, item));
  }
  return out.empty() ? fallback : out;
}

}  // namespace ecs
