#include "util/args.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace ecs {
namespace {

bool looks_like_flag(const std::string& s) {
  return s.size() > 2 && s[0] == '-' && s[1] == '-';
}

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

Args Args::parse(int argc, const char* const* argv) {
  Args args;
  if (argc > 0) args.program_ = argv[0];
  bool rest_positional = false;
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    if (rest_positional) {
      args.positional_.push_back(std::move(tok));
      continue;
    }
    if (tok == "--") {
      rest_positional = true;
      continue;
    }
    if (!looks_like_flag(tok)) {
      args.positional_.push_back(std::move(tok));
      continue;
    }
    std::string key = tok.substr(2);
    std::string value;
    const auto eq = key.find('=');
    if (eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      value = argv[++i];
    }
    args.values_[key] = value;
  }
  return args;
}

bool Args::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::optional<std::string> Args::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Args::get_or(const std::string& key,
                         const std::string& fallback) const {
  return get(key).value_or(fallback);
}

std::int64_t Args::get_int(const std::string& key,
                           std::int64_t fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) return fallback;
  return std::strtoll(v->c_str(), nullptr, 10);
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) return fallback;
  return std::strtod(v->c_str(), nullptr);
}

bool Args::get_bool(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  if (v->empty()) return true;  // bare --flag
  const std::string lower = to_lower(*v);
  return !(lower == "0" || lower == "false" || lower == "no" ||
           lower == "off");
}

std::vector<double> Args::get_double_list(
    const std::string& key, const std::vector<double>& fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) return fallback;
  std::vector<double> out;
  std::stringstream ss(*v);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::strtod(item.c_str(), nullptr));
  }
  return out.empty() ? fallback : out;
}

std::vector<std::int64_t> Args::get_int_list(
    const std::string& key, const std::vector<std::int64_t>& fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) return fallback;
  std::vector<std::int64_t> out;
  std::stringstream ss(*v);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::strtoll(item.c_str(), nullptr, 10));
  }
  return out.empty() ? fallback : out;
}

}  // namespace ecs
