// args.hpp - Minimal command-line argument parsing for bench and example
// binaries.
//
// Supports `--key=value`, `--key value` and boolean `--flag` forms. Unknown
// arguments are collected so callers can reject or forward them (the bench
// binaries forward leftovers to google-benchmark).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ecs {

class Args {
 public:
  Args() = default;

  /// Parses argv. Arguments after a literal `--` are left in positional().
  static Args parse(int argc, const char* const* argv);

  /// True when --key was supplied (with or without a value).
  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& key,
                                   const std::string& fallback) const;

  // Numeric accessors are strict: an absent flag (or a bare `--flag` with no
  // value) yields the fallback, but a malformed or partially-numeric value
  // ("abc", "10x", "1e999") throws std::invalid_argument naming the flag —
  // a typo must never be silently read as 0 or truncated.

  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  /// Boolean flags: present without value => true; "0"/"false"/"no" => false.
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Comma-separated list of doubles, e.g. --ccr=0.1,1,10. Empty segments
  /// are skipped; malformed segments throw std::invalid_argument.
  [[nodiscard]] std::vector<double> get_double_list(
      const std::string& key, const std::vector<double>& fallback) const;
  /// Comma-separated list of integers, same strictness as get_double_list.
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& key, const std::vector<std::int64_t>& fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Name of the executable (argv[0]) if parsing saw one.
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ecs
