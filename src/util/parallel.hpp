// parallel.hpp - Parallel replication of independent simulations.
//
// Sweep points average many independent instances; those replications are
// embarrassingly parallel. `parallel_for` distributes indices [0, count)
// over a bounded set of worker threads via an atomic work counter — results
// are written into caller-preallocated slots, so the aggregation is
// deterministic regardless of thread interleaving. On a single-core host
// it degrades gracefully to a serial loop.
//
// Workers live in a lazily-initialized persistent pool (grown on demand,
// joined at process exit), so repeated calls do not pay thread spawn/join
// per invocation. Top-level calls from distinct threads serialize; a
// nested parallel_for from inside a body runs serially on that thread.
#pragma once

#include <cstddef>
#include <functional>

namespace ecs {

/// Number of worker threads to use by default: hardware concurrency,
/// at least 1.
[[nodiscard]] unsigned default_thread_count();

/// Invokes `body(i)` for every i in [0, count), using up to `threads`
/// workers (0 = default_thread_count()). `body` must be safe to call
/// concurrently for distinct indices. Exceptions thrown by `body` are
/// captured and the first one is rethrown on the calling thread after all
/// workers finish. A failure aborts the run early: indices not yet claimed
/// when the first exception lands are never started (in-flight bodies on
/// other workers still run to completion).
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  unsigned threads = 0);

}  // namespace ecs
