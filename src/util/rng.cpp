#include "util/rng.hpp"

#include <cassert>

namespace ecs {

std::uint64_t mix64(std::uint64_t x) noexcept {
  // SplitMix64 finalizer (Steele, Lea, Flood 2014).
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t tag) noexcept {
  return mix64(base ^ mix64(tag));
}

std::uint64_t hash_tag(std::string_view tag) noexcept {
  // FNV-1a, then mixed for avalanche.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : tag) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return mix64(h);
}

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::truncated_normal(double mean, double stddev, double lo) {
  // Resample a bounded number of times, then clamp. The workloads we model
  // have mean >> stddev, so resampling almost never triggers; the clamp is a
  // safety net that keeps the draw count deterministic and bounded.
  for (int attempt = 0; attempt < 16; ++attempt) {
    const double x = normal(mean, stddev);
    if (x >= lo) return x;
  }
  return lo;
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

}  // namespace ecs
