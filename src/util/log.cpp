#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace ecs {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

std::optional<LogLevel> parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return std::nullopt;
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace ecs
