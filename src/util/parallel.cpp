#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace ecs {

unsigned default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

namespace {

/// One parallel_for invocation: the shared claim counter plus the
/// first-error-wins abort state. Lives on the caller's stack for the
/// duration of the call.
struct Task {
  std::size_t count = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> abort{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
};

void drain(Task& task) {
  while (!task.abort.load(std::memory_order_relaxed)) {
    const std::size_t i = task.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= task.count) return;
    try {
      (*task.body)(i);
    } catch (...) {
      // First failure wins and aborts the sweep: without the flag a
      // thrown replication let the remaining thousands run to completion
      // before the caller ever saw the error.
      task.abort.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(task.error_mutex);
      if (!task.first_error) task.first_error = std::current_exception();
    }
  }
}

/// True on any thread currently inside a parallel_for body (worker or
/// caller). A nested parallel_for on such a thread runs serially: the
/// dispatch lock is not re-entrant and the workers are already busy.
thread_local bool t_inside_parallel = false;

/// Lazily-grown persistent worker pool. Spawning and joining a fresh set
/// of threads per parallel_for call dominated short sweeps; the pool
/// amortizes thread creation across the process lifetime. One task runs
/// at a time (top-level calls from distinct threads serialize on
/// dispatch_mutex_); within a task the caller participates alongside
/// `threads - 1` drafted workers.
class WorkerPool {
 public:
  static WorkerPool& instance() {
    static WorkerPool pool;
    return pool;
  }

  void run(std::size_t count, const std::function<void(std::size_t)>& body,
           unsigned threads) {
    Task task;
    task.count = count;
    task.body = &body;

    std::lock_guard<std::mutex> dispatch(dispatch_mutex_);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ensure_workers(threads - 1, lock);
      task_ = &task;
      seats_ = threads - 1;
      active_ = seats_;
      ++generation_;
      wake_cv_.notify_all();
    }

    t_inside_parallel = true;
    drain(task);
    t_inside_parallel = false;

    {
      std::unique_lock<std::mutex> lock(mutex_);
      done_cv_.wait(lock, [&] { return active_ == 0; });
      task_ = nullptr;
    }
    if (task.first_error) std::rethrow_exception(task.first_error);
  }

 private:
  WorkerPool() = default;

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
      wake_cv_.notify_all();
    }
    for (std::thread& t : workers_) t.join();
  }

  /// Grows the pool so at least `needed` workers exist. Called with
  /// `lock` held on mutex_.
  void ensure_workers(std::size_t needed,
                      const std::unique_lock<std::mutex>& lock) {
    (void)lock;
    while (workers_.size() < needed) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void worker_loop() {
    t_inside_parallel = true;
    std::unique_lock<std::mutex> lock(mutex_);
    // 0 is never a dispatched generation, so a freshly spawned worker —
    // which may first acquire the lock only AFTER the dispatch that
    // created it bumped generation_ — still sees that dispatch as new
    // and claims its seat (initializing from generation_ here would make
    // it sleep through the task it was spawned for: deadlock).
    std::uint64_t seen = 0;
    for (;;) {
      // A worker joins a task only while an unclaimed seat remains, so a
      // pool larger than one call's `threads` never over-subscribes it.
      wake_cv_.wait(lock, [&] {
        return stop_ || (generation_ != seen && seats_ > 0);
      });
      if (stop_) return;
      seen = generation_;
      --seats_;
      Task* task = task_;
      lock.unlock();
      drain(*task);
      lock.lock();
      if (--active_ == 0) done_cv_.notify_all();
      // The lock is held from the decrement through the next wait()'s
      // predicate check, so a dispatch that observes active_ == 0 cannot
      // slip its generation bump past this worker unseen.
    }
  }

  std::mutex dispatch_mutex_;  ///< serializes top-level calls

  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  Task* task_ = nullptr;
  std::uint64_t generation_ = 0;  ///< bumped per dispatched task
  std::size_t seats_ = 0;         ///< workers still wanted for this task
  std::size_t active_ = 0;        ///< drafted workers not yet finished
  bool stop_ = false;
};

}  // namespace

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  unsigned threads) {
  if (count == 0) return;
  if (threads == 0) threads = default_thread_count();
  threads = static_cast<unsigned>(std::min<std::size_t>(threads, count));

  if (threads <= 1 || t_inside_parallel) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  WorkerPool::instance().run(count, body, threads);
}

}  // namespace ecs
