// interval.hpp - Half-open time intervals and disjoint interval sets.
//
// Schedules (paper section III-B) are sets of disjoint execution and
// communication intervals per job. IntervalSet maintains a sorted list of
// disjoint intervals, merging on insertion, and supports the queries the
// validator needs: total measure, overlap tests, and extremities
// (the paper's min(E) / max(E)).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/time.hpp"

namespace ecs {

/// Half-open interval [begin, end). Zero-length intervals are allowed as
/// values but are never stored inside an IntervalSet.
struct Interval {
  Time begin = 0.0;
  Time end = 0.0;

  [[nodiscard]] double length() const noexcept { return end - begin; }
  [[nodiscard]] bool empty() const noexcept {
    return !time_lt(begin, end);
  }
  [[nodiscard]] bool operator==(const Interval&) const = default;
};

/// True when the two intervals overlap on a set of positive measure
/// (touching endpoints do not count as an overlap).
[[nodiscard]] bool overlaps(const Interval& a, const Interval& b) noexcept;

[[nodiscard]] std::string to_string(const Interval& iv);

/// Sorted set of pairwise-disjoint intervals. Insertions merge adjacent or
/// overlapping pieces, so the representation is canonical.
class IntervalSet {
 public:
  IntervalSet() = default;

  /// Adds [begin, end); merges with touching/overlapping members.
  /// Empty (or inverted within tolerance) intervals are ignored.
  void add(Time begin, Time end);
  void add(const Interval& iv) { add(iv.begin, iv.end); }

  /// Union with another set.
  void add(const IntervalSet& other);

  [[nodiscard]] bool empty() const noexcept { return intervals_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return intervals_.size(); }
  [[nodiscard]] const std::vector<Interval>& intervals() const noexcept {
    return intervals_;
  }

  /// Total measure (sum of lengths).
  [[nodiscard]] double measure() const noexcept;

  /// Smallest extremity, i.e. the paper's min(E). Empty => nullopt.
  [[nodiscard]] std::optional<Time> min() const noexcept;

  /// Largest extremity, i.e. the paper's max(E). Empty => nullopt.
  [[nodiscard]] std::optional<Time> max() const noexcept;

  /// True when some member overlaps [begin, end) with positive measure.
  [[nodiscard]] bool intersects(const Interval& iv) const noexcept;

  /// True when the two sets overlap with positive measure anywhere.
  [[nodiscard]] bool intersects(const IntervalSet& other) const noexcept;

  /// First overlapping pair between this set and `other`, if any;
  /// used to produce precise violation diagnostics.
  [[nodiscard]] std::optional<std::pair<Interval, Interval>>
  first_overlap(const IntervalSet& other) const noexcept;

  /// True when every point of [begin, end) is covered by the set.
  [[nodiscard]] bool covers(const Interval& iv) const noexcept;

  /// True when the point t lies inside a member interval (half-open
  /// semantics with time tolerance: begin <= t < end).
  [[nodiscard]] bool contains(Time t) const noexcept;

  [[nodiscard]] bool operator==(const IntervalSet&) const = default;

 private:
  std::vector<Interval> intervals_;  // sorted by begin, pairwise disjoint
};

[[nodiscard]] std::string to_string(const IntervalSet& set);

}  // namespace ecs
