#include "core/energy.hpp"

#include <algorithm>

namespace ecs {

EnergyBreakdown compute_energy(const Instance& instance,
                               const Schedule& schedule,
                               const EnergyModel& model) {
  EnergyBreakdown out;
  Time horizon = 0.0;

  const auto charge_run = [&](const RunRecord& run, bool abandoned) {
    const double exec = run.exec.measure();
    const double up = run.uplink.measure();
    const double down = run.downlink.measure();
    double run_energy = 0.0;
    if (run.alloc == kAllocEdge) {
      run_energy += exec * model.edge_compute_power;
      out.edge_compute += exec * model.edge_compute_power;
    } else if (is_cloud_alloc(run.alloc)) {
      run_energy += exec * model.cloud_compute_power;
      out.cloud_compute += exec * model.cloud_compute_power;
      const double comm =
          up * model.uplink_power + down * model.downlink_power;
      run_energy += comm;
      out.communication += comm;
    }
    if (abandoned) out.wasted += run_energy;
    for (const IntervalSet* set : {&run.uplink, &run.exec, &run.downlink}) {
      if (const auto m = set->max()) horizon = std::max(horizon, *m);
    }
  };

  double busy_edge = 0.0;
  double busy_cloud = 0.0;
  for (const JobSchedule& js : schedule.jobs()) {
    charge_run(js.final_run, /*abandoned=*/false);
    for (const RunRecord& run : js.abandoned) {
      charge_run(run, /*abandoned=*/true);
    }
    const auto busy_of = [&](const RunRecord& run) {
      if (run.alloc == kAllocEdge) {
        busy_edge += run.exec.measure();
      } else if (is_cloud_alloc(run.alloc)) {
        busy_cloud += run.exec.measure();
      }
    };
    busy_of(js.final_run);
    for (const RunRecord& run : js.abandoned) busy_of(run);
  }

  const int pe = instance.platform.edge_count();
  const int pc = instance.platform.cloud_count();
  const double edge_idle_time = std::max(0.0, horizon * pe - busy_edge);
  const double cloud_idle_time = std::max(0.0, horizon * pc - busy_cloud);
  out.idle = edge_idle_time * model.edge_idle_power +
             cloud_idle_time * model.cloud_idle_power;

  out.total =
      out.edge_compute + out.cloud_compute + out.communication + out.idle;
  return out;
}

}  // namespace ecs
