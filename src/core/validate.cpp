#include "core/validate.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace ecs {
namespace {

/// An interval tagged with its owning job, used for sweep-line conflict
/// detection on a shared resource.
struct TaggedInterval {
  Interval iv;
  JobId job;
};

/// Sweeps the intervals claimed on one resource (sorted by begin) against
/// the running farthest end seen so far, so an overlap is reported even
/// when the two intervals are not sort-adjacent (e.g. a long claim
/// enclosing several later ones). Members of a single IntervalSet are
/// disjoint by construction, so any overlap involves two different runs.
void check_resource(std::vector<TaggedInterval>& claims,
                    ViolationKind kind, const std::string& resource,
                    std::vector<Violation>& out) {
  std::sort(claims.begin(), claims.end(),
            [](const TaggedInterval& a, const TaggedInterval& b) {
              return a.iv.begin < b.iv.begin;
            });
  if (claims.empty()) return;
  std::size_t farthest = 0;  // claim with the largest end so far
  for (std::size_t i = 1; i < claims.size(); ++i) {
    const TaggedInterval& prev = claims[farthest];
    const TaggedInterval& cur = claims[i];
    if (time_lt(cur.iv.begin, prev.iv.end)) {
      std::ostringstream os;
      os << resource << ": " << to_string(prev.iv) << " of J" << prev.job
         << " overlaps " << to_string(cur.iv) << " of J" << cur.job;
      out.push_back(Violation{kind, prev.job, cur.job, os.str()});
    }
    if (cur.iv.end > claims[farthest].iv.end) farthest = i;
  }
}

void append_claims(const IntervalSet& set, JobId job,
                   std::vector<TaggedInterval>& claims) {
  for (const Interval& iv : set.intervals()) {
    claims.push_back(TaggedInterval{iv, job});
  }
}

void check_run_before_release(const RunRecord& run, const Job& job,
                              bool abandoned,
                              std::vector<Violation>& out) {
  Time earliest = kTimeInfinity;
  for (const IntervalSet* set : {&run.uplink, &run.exec, &run.downlink}) {
    if (const auto m = set->min()) earliest = std::min(earliest, *m);
  }
  if (earliest < kTimeInfinity && time_lt(earliest, job.release)) {
    std::ostringstream os;
    os << "J" << job.id << (abandoned ? " (abandoned run)" : "")
       << " starts at " << earliest << " before release " << job.release;
    out.push_back(
        Violation{ViolationKind::kBeforeRelease, job.id, -1, os.str()});
  }
}

void check_final_run(const Instance& instance, const Job& job,
                     const RunRecord& run, std::vector<Violation>& out) {
  const Platform& platform = instance.platform;
  if (run.alloc == kAllocUnassigned) {
    std::string msg = "J";
    msg += std::to_string(job.id);
    msg += " is unallocated";
    out.push_back(
        Violation{ViolationKind::kUnallocated, job.id, -1, std::move(msg)});
    return;
  }
  if (is_cloud_alloc(run.alloc) && run.alloc >= platform.cloud_count()) {
    std::ostringstream os;
    os << "J" << job.id << " allocated to cloud " << run.alloc
       << " but the platform has only " << platform.cloud_count()
       << " cloud processors";
    out.push_back(
        Violation{ViolationKind::kBadAllocation, job.id, -1, os.str()});
    return;
  }

  // Quantity slack: the engine declares an activity complete when its
  // remaining amount drops below kAmountEpsilon, so a conforming schedule's
  // recorded measure may legitimately fall short by up to that much (plus
  // sub-nanosecond recording slivers). 10x covers both with margin while
  // remaining far below any real shortfall.
  constexpr double kQuantitySlack = 10.0 * kAmountEpsilon;
  const auto quantity_short = [&](double got, double need) {
    return got + kQuantitySlack < need &&
           time_lt(got, need);  // also magnitude-tolerant for huge values
  };
  const auto quantity_violation = [&](const char* what, double got,
                                      double need) {
    std::ostringstream os;
    os << "J" << job.id << ": " << what << " amount " << got
       << " is below the required " << need;
    out.push_back(Violation{ViolationKind::kQuantity, job.id, -1, os.str()});
  };

  if (run.alloc == kAllocEdge) {
    const double need = platform.edge_time(job);
    if (quantity_short(run.exec.measure(), need)) {
      quantity_violation("edge execution", run.exec.measure(), need);
    }
    if (!run.uplink.empty() || !run.downlink.empty()) {
      std::string msg = "J";
      msg += std::to_string(job.id);
      msg += " executes on the edge but has communication intervals";
      out.push_back(Violation{ViolationKind::kPrecedence, job.id, -1,
                              std::move(msg)});
    }
    return;
  }

  // Cloud execution (at the speed of the allocated cloud processor).
  if (quantity_short(run.uplink.measure(), job.up)) {
    quantity_violation("uplink", run.uplink.measure(), job.up);
  }
  const double cloud_need = job.work / platform.cloud_speed(run.alloc);
  if (quantity_short(run.exec.measure(), cloud_need)) {
    quantity_violation("cloud execution", run.exec.measure(), cloud_need);
  }
  if (quantity_short(run.downlink.measure(), job.down)) {
    quantity_violation("downlink", run.downlink.measure(), job.down);
  }
  // Precedence: max(U) <= min(E) <= max(E) <= min(D).
  if (!run.uplink.empty() && !run.exec.empty() &&
      time_gt(*run.uplink.max(), *run.exec.min())) {
    std::ostringstream os;
    os << "J" << job.id << ": uplink ends at " << *run.uplink.max()
       << " after execution starts at " << *run.exec.min();
    out.push_back(Violation{ViolationKind::kPrecedence, job.id, -1, os.str()});
  }
  if (!run.exec.empty() && !run.downlink.empty() &&
      time_gt(*run.exec.max(), *run.downlink.min())) {
    std::ostringstream os;
    os << "J" << job.id << ": execution ends at " << *run.exec.max()
       << " after downlink starts at " << *run.downlink.min();
    out.push_back(Violation{ViolationKind::kPrecedence, job.id, -1, os.str()});
  }
}

void check_self_overlap(const Job& job, const JobSchedule& js,
                        std::vector<Violation>& out) {
  std::vector<TaggedInterval> claims;
  const auto collect = [&](const RunRecord& run) {
    append_claims(run.uplink, job.id, claims);
    append_claims(run.exec, job.id, claims);
    append_claims(run.downlink, job.id, claims);
  };
  collect(js.final_run);
  for (const RunRecord& run : js.abandoned) collect(run);
  std::vector<Violation> conflicts;
  std::string label = "J";
  label += std::to_string(job.id);
  label += " self-overlap";
  check_resource(claims, ViolationKind::kSelfOverlap, label, conflicts);
  out.insert(out.end(), conflicts.begin(), conflicts.end());
}

/// True when the run recorded at least one interval of any kind.
[[nodiscard]] bool run_has_activity(const RunRecord& run) {
  return !run.uplink.empty() || !run.exec.empty() || !run.downlink.empty();
}

/// A refused (rejected or shed) job must leave no intervals behind; it is
/// exempt from every other per-job requirement.
void check_refused_job(const Job& job, const JobSchedule& js,
                       std::vector<Violation>& out) {
  bool active = run_has_activity(js.final_run);
  for (const RunRecord& run : js.abandoned) active = active || run_has_activity(run);
  if (!active) return;
  std::ostringstream os;
  os << "J" << job.id
     << " was rejected or shed by admission control but recorded activity";
  out.push_back(
      Violation{ViolationKind::kRejectedActivity, job.id, -1, os.str()});
}

}  // namespace

std::string to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kUnallocated:
      return "unallocated";
    case ViolationKind::kBeforeRelease:
      return "before-release";
    case ViolationKind::kQuantity:
      return "quantity";
    case ViolationKind::kPrecedence:
      return "precedence";
    case ViolationKind::kProcessorConflict:
      return "processor-conflict";
    case ViolationKind::kPortConflict:
      return "port-conflict";
    case ViolationKind::kSelfOverlap:
      return "self-overlap";
    case ViolationKind::kBadAllocation:
      return "bad-allocation";
    case ViolationKind::kOutageConflict:
      return "outage-conflict";
    case ViolationKind::kFaultConflict:
      return "fault-conflict";
    case ViolationKind::kFaultRestart:
      return "fault-restart";
    case ViolationKind::kRejectedActivity:
      return "rejected-activity";
  }
  return "unknown";
}

std::string to_string(const Violation& violation) {
  // Built with += rather than chained operator+ — the chain trips a GCC 12
  // -Wrestrict false positive (PR105651) under -Werror.
  std::string out = "[";
  out += to_string(violation.kind);
  out += "] ";
  out += violation.message;
  return out;
}

namespace {

/// Full structural validation; `refused_mask` (nullable, size n) marks jobs
/// admission control refused — they must record no activity and skip the
/// allocation / quantity requirements.
std::vector<Violation> validate_schedule_impl(
    const Instance& instance, const Schedule& schedule,
    const std::vector<char>* refused_mask) {
  std::vector<Violation> out;
  const Platform& platform = instance.platform;
  const int n = instance.job_count();
  if (schedule.job_count() != n) {
    out.push_back(Violation{
        ViolationKind::kBadAllocation, -1, -1,
        "schedule covers " + std::to_string(schedule.job_count()) +
            " jobs but the instance has " + std::to_string(n)});
    return out;
  }
  const auto refused = [&](int i) {
    return refused_mask != nullptr && (*refused_mask)[i] != 0;
  };

  // Per-job checks.
  for (int i = 0; i < n; ++i) {
    const Job& job = instance.jobs[i];
    const JobSchedule& js = schedule.job(i);
    if (refused(i)) {
      check_refused_job(job, js, out);
      continue;
    }
    check_final_run(instance, job, js.final_run, out);
    check_run_before_release(js.final_run, job, /*abandoned=*/false, out);
    for (const RunRecord& run : js.abandoned) {
      check_run_before_release(run, job, /*abandoned=*/true, out);
    }
    check_self_overlap(job, js, out);
  }

  // Resource exclusivity. Claims are gathered over final AND abandoned runs:
  // an abandoned execution still occupied its processor and ports.
  const int pe = platform.edge_count();
  const int pc = platform.cloud_count();
  std::vector<std::vector<TaggedInterval>> edge_cpu(pe), edge_send(pe),
      edge_recv(pe), cloud_cpu(pc), cloud_send(pc), cloud_recv(pc);

  for (int i = 0; i < n; ++i) {
    if (refused(i)) continue;  // refused jobs recorded nothing (checked above)
    const Job& job = instance.jobs[i];
    const JobSchedule& js = schedule.job(i);
    const auto claim_run = [&](const RunRecord& run) {
      if (run.alloc == kAllocEdge) {
        append_claims(run.exec, job.id, edge_cpu[job.origin]);
      } else if (is_cloud_alloc(run.alloc) && run.alloc < pc) {
        append_claims(run.uplink, job.id, edge_send[job.origin]);
        append_claims(run.uplink, job.id, cloud_recv[run.alloc]);
        append_claims(run.exec, job.id, cloud_cpu[run.alloc]);
        append_claims(run.downlink, job.id, cloud_send[run.alloc]);
        append_claims(run.downlink, job.id, edge_recv[job.origin]);
      }
    };
    claim_run(js.final_run);
    for (const RunRecord& run : js.abandoned) claim_run(run);
  }

  for (int j = 0; j < pe; ++j) {
    check_resource(edge_cpu[j], ViolationKind::kProcessorConflict,
                   "edge processor " + std::to_string(j), out);
    check_resource(edge_send[j], ViolationKind::kPortConflict,
                   "edge " + std::to_string(j) + " send port", out);
    check_resource(edge_recv[j], ViolationKind::kPortConflict,
                   "edge " + std::to_string(j) + " receive port", out);
  }
  for (int k = 0; k < pc; ++k) {
    check_resource(cloud_cpu[k], ViolationKind::kProcessorConflict,
                   "cloud processor " + std::to_string(k), out);
    check_resource(cloud_recv[k], ViolationKind::kPortConflict,
                   "cloud " + std::to_string(k) + " receive port", out);
    check_resource(cloud_send[k], ViolationKind::kPortConflict,
                   "cloud " + std::to_string(k) + " send port", out);
  }

  // Cloud availability windows: nothing may involve a cloud processor
  // while it is requested by another application.
  if (!instance.cloud_outages.empty()) {
    for (int i = 0; i < n; ++i) {
      if (refused(i)) continue;
      const JobSchedule& js = schedule.job(i);
      const auto check_run = [&](const RunRecord& run) {
        if (!is_cloud_alloc(run.alloc) || run.alloc >= pc ||
            static_cast<std::size_t>(run.alloc) >=
                instance.cloud_outages.size()) {
          return;  // malformed outage table is validate_instance's problem
        }
        const IntervalSet& outages = instance.cloud_outages[run.alloc];
        for (const IntervalSet* set :
             {&run.uplink, &run.exec, &run.downlink}) {
          if (const auto overlap = set->first_overlap(outages)) {
            std::ostringstream os;
            os << "J" << i << ": " << to_string(overlap->first)
               << " overlaps cloud " << run.alloc << " outage "
               << to_string(overlap->second);
            out.push_back(Violation{ViolationKind::kOutageConflict,
                                    static_cast<JobId>(i), -1, os.str()});
          }
        }
      };
      check_run(js.final_run);
      for (const RunRecord& run : js.abandoned) check_run(run);
    }
  }
  return out;
}

}  // namespace

std::vector<Violation> validate_schedule(const Instance& instance,
                                         const Schedule& schedule) {
  return validate_schedule_impl(instance, schedule, nullptr);
}

namespace {

/// Appends the fault-plan checks (kFaultConflict / kFaultRestart) to `out`.
/// Jobs with no recorded intervals (e.g. refused by admission) are
/// naturally exempt: every check quantifies over recorded intervals.
void append_fault_violations(const Instance& instance,
                             const Schedule& schedule,
                             const FaultPlan& faults,
                             std::vector<Violation>& out) {
  const int pc = instance.platform.cloud_count();

  // Crash windows per cloud. (Only struct fields of the plan are used here:
  // ecs_core must not depend on ecs_sim's compiled symbols.)
  std::vector<std::vector<Interval>> crashes(std::max(pc, 0));
  for (const FaultSpec& f : faults.faults) {
    if (f.kind != FaultKind::kCrash) continue;
    if (f.cloud < 0 || f.cloud >= pc) continue;  // plan validation's problem
    crashes[f.cloud].push_back(Interval{f.begin, f.end});
  }

  for (int i = 0; i < instance.job_count(); ++i) {
    const JobSchedule& js = schedule.job(i);
    const auto check_run = [&](const RunRecord& run, bool abandoned) {
      if (!is_cloud_alloc(run.alloc) || run.alloc >= pc) return;
      // Extent of the whole run (all three activity kinds).
      Time run_min = kTimeInfinity;
      Time run_max = -kTimeInfinity;
      for (const IntervalSet* set : {&run.uplink, &run.exec, &run.downlink}) {
        if (const auto m = set->min()) run_min = std::min(run_min, *m);
        if (const auto m = set->max()) run_max = std::max(run_max, *m);
      }
      if (run_min == kTimeInfinity) return;  // empty run
      for (const Interval& crash : crashes[run.alloc]) {
        for (const IntervalSet* set :
             {&run.uplink, &run.exec, &run.downlink}) {
          if (set->intersects(crash)) {
            std::ostringstream os;
            os << "J" << i << (abandoned ? " (abandoned run)" : "")
               << ": activity on cloud " << run.alloc
               << " overlaps its crash window " << to_string(crash);
            out.push_back(Violation{ViolationKind::kFaultConflict,
                                    static_cast<JobId>(i), -1, os.str()});
          }
        }
        // Restart-from-zero: one run with activity on both sides of the
        // crash start kept progress through a crash that wiped the machine.
        if (time_lt(run_min, crash.begin) && time_gt(run_max, crash.begin)) {
          std::ostringstream os;
          os << "J" << i << (abandoned ? " (abandoned run)" : "")
             << ": run on cloud " << run.alloc << " spans ["
             << run_min << ", " << run_max << "] across the crash at "
             << crash.begin << " — re-execution must restart from zero "
             << "progress in a new run";
          out.push_back(Violation{ViolationKind::kFaultRestart,
                                  static_cast<JobId>(i), -1, os.str()});
        }
      }
    };
    check_run(js.final_run, /*abandoned=*/false);
    for (const RunRecord& run : js.abandoned) check_run(run, true);
  }
}

}  // namespace

std::vector<Violation> validate_schedule(const Instance& instance,
                                         const Schedule& schedule,
                                         const FaultPlan& faults) {
  std::vector<Violation> out = validate_schedule_impl(instance, schedule,
                                                      nullptr);
  if (!faults.empty()) {
    append_fault_violations(instance, schedule, faults, out);
  }
  return out;
}

std::vector<Violation> validate_schedule(const Instance& instance,
                                         const Schedule& schedule,
                                         const FaultPlan& faults,
                                         const std::vector<JobId>& refused) {
  std::vector<char> mask(
      static_cast<std::size_t>(std::max(instance.job_count(), 0)), 0);
  for (const JobId id : refused) {
    if (id >= 0 && static_cast<std::size_t>(id) < mask.size()) mask[id] = 1;
  }
  std::vector<Violation> out =
      validate_schedule_impl(instance, schedule, &mask);
  if (!faults.empty()) {
    append_fault_violations(instance, schedule, faults, out);
  }
  return out;
}

bool is_valid_schedule(const Instance& instance, const Schedule& schedule) {
  return validate_schedule(instance, schedule).empty();
}

namespace {

[[noreturn]] void throw_violations(const std::vector<Violation>& violations) {
  std::string all = "invalid schedule:";
  for (const Violation& v : violations) {
    all += "\n  - ";
    all += to_string(v);
  }
  throw std::runtime_error(all);
}

}  // namespace

void require_valid_schedule(const Instance& instance,
                            const Schedule& schedule) {
  const auto violations = validate_schedule(instance, schedule);
  if (!violations.empty()) throw_violations(violations);
}

void require_valid_schedule(const Instance& instance,
                            const Schedule& schedule,
                            const FaultPlan& faults) {
  const auto violations = validate_schedule(instance, schedule, faults);
  if (!violations.empty()) throw_violations(violations);
}

void require_valid_schedule(const Instance& instance,
                            const Schedule& schedule,
                            const FaultPlan& faults,
                            const std::vector<JobId>& refused) {
  const auto violations =
      validate_schedule(instance, schedule, faults, refused);
  if (!violations.empty()) throw_violations(violations);
}

}  // namespace ecs
