// time.hpp - Continuous simulated time and epsilon-aware comparisons.
//
// The simulator works in continuous time represented by `double`. All
// comparisons that decide scheduling structure (interval disjointness,
// precedence, completion detection) go through the tolerant helpers below so
// that accumulated floating-point error never produces spurious constraint
// violations or missed events.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

namespace ecs {

/// Simulated time, in abstract time units (the paper's unit-speed cloud
/// processor executes one unit of work per unit of time).
using Time = double;

/// Positive infinity, used for "no next event".
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

/// Relative tolerance for time comparisons (scaled by operand magnitude in
/// time_tolerance, with an absolute floor of the same value). Doubles carry
/// ~1e-16 relative precision and the engine's arithmetic accumulates at most
/// a few ulps per event, so 1e-9 comfortably absorbs rounding while staying
/// far below any schedulable duration — even at horizons of 1e7 time units
/// the tolerance is only 1e-2. (An earlier 1e-6 value let jobs release
/// measurably early late in long simulations.)
inline constexpr double kTimeEpsilon = 1e-9;

/// Tolerance scaled to the magnitude of the operands.
[[nodiscard]] inline double time_tolerance(Time a, Time b) noexcept {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  return kTimeEpsilon * scale;
}

[[nodiscard]] inline bool time_eq(Time a, Time b) noexcept {
  return std::fabs(a - b) <= time_tolerance(a, b);
}

[[nodiscard]] inline bool time_lt(Time a, Time b) noexcept {
  return a < b - time_tolerance(a, b);
}

[[nodiscard]] inline bool time_le(Time a, Time b) noexcept {
  return a <= b + time_tolerance(a, b);
}

[[nodiscard]] inline bool time_gt(Time a, Time b) noexcept {
  return time_lt(b, a);
}

[[nodiscard]] inline bool time_ge(Time a, Time b) noexcept {
  return time_le(b, a);
}

/// Margin the scheduling policies demand before treating one option as
/// strictly better than another. Deliberately much coarser than
/// kTimeEpsilon: sub-1e-6 differences between completion-time estimates are
/// projection noise, and switching on them would discard progress through
/// the re-execution rule for no real gain.
inline constexpr double kDecisionMargin = 1e-6;

/// Tolerance for *amounts* (remaining work / communication). Strictly
/// smaller than kTimeEpsilon so that the validator's quantity checks
/// (tolerant at kTimeEpsilon) always accept an activity the engine
/// considered complete.
inline constexpr double kAmountEpsilon = 1e-7;

/// True when a remaining amount of work/communication is exhausted.
[[nodiscard]] inline bool amount_done(double remaining) noexcept {
  return remaining <= kAmountEpsilon;
}

/// Clamps tiny negative residue (from subtraction of elapsed time) to zero.
[[nodiscard]] inline double clamp_amount(double remaining) noexcept {
  return remaining < 0.0 ? 0.0 : remaining;
}

}  // namespace ecs
