// metrics.hpp - Objective values of a schedule.
//
// The stretch of job J_i is S_i = (C_i - r_i) / min(t^e_i, t^c_i)
// (paper eq. (1)); the optimization objective is max_i S_i. We also expose
// the response time (flow time) and aggregate views used by the experiment
// harness and the tests.
#pragma once

#include <vector>

#include "core/platform.hpp"
#include "core/schedule.hpp"

namespace ecs {

struct JobMetrics {
  JobId id = -1;
  Time completion = 0.0;   ///< C_i
  double response = 0.0;   ///< C_i - r_i (flow time)
  double best_time = 0.0;  ///< min(t^e_i, t^c_i), the stretch denominator
  double stretch = 0.0;    ///< S_i
};

struct ScheduleMetrics {
  std::vector<JobMetrics> per_job;
  double max_stretch = 0.0;
  double mean_stretch = 0.0;
  double max_response = 0.0;
  double mean_response = 0.0;
  Time makespan = 0.0;
  int reexecutions = 0;  ///< total abandoned runs across jobs

  /// l_p norm of the stretch vector divided by n^(1/p) — the "p-norm
  /// stretch" family from the literature the paper cites: p = 1 is the
  /// average stretch, p -> infinity approaches the max stretch.
  [[nodiscard]] double stretch_norm(double p) const;

  /// Linear-interpolated percentile of the per-job stretches, q in [0,1].
  [[nodiscard]] double stretch_percentile(double q) const;

  /// Fraction of [0, makespan] during which cloud processors execute work.
  double cloud_utilization = 0.0;
  /// Fraction of [0, makespan] during which edge processors execute work.
  double edge_utilization = 0.0;
};

/// Computes per-job and aggregate metrics. Every job must be complete
/// (throws std::runtime_error otherwise) — run the validator first for a
/// diagnosable error.
[[nodiscard]] ScheduleMetrics compute_metrics(const Instance& instance,
                                              const Schedule& schedule);

/// Stretch of a hypothetical completion time for one job; used by the
/// online heuristics when projecting candidate decisions.
[[nodiscard]] double stretch_of(const Platform& platform, const Job& job,
                                Time completion);

/// Metrics from a completion-time vector alone (no interval history).
/// Utilization and re-execution counts are left at zero — used by the
/// experiment harness when schedules are not recorded to save memory.
[[nodiscard]] ScheduleMetrics metrics_from_completions(
    const Instance& instance, const std::vector<Time>& completions);

}  // namespace ecs
