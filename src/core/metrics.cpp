#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace ecs {

double ScheduleMetrics::stretch_norm(double p) const {
  if (per_job.empty()) return 0.0;
  if (!(p > 0.0)) {
    throw std::invalid_argument("stretch_norm: p must be positive");
  }
  double sum = 0.0;
  for (const JobMetrics& jm : per_job) {
    sum += std::pow(jm.stretch, p);
  }
  return std::pow(sum / static_cast<double>(per_job.size()), 1.0 / p);
}

double ScheduleMetrics::stretch_percentile(double q) const {
  if (per_job.empty()) return 0.0;
  std::vector<double> stretches;
  stretches.reserve(per_job.size());
  for (const JobMetrics& jm : per_job) stretches.push_back(jm.stretch);
  return percentile(stretches, q);
}

double stretch_of(const Platform& platform, const Job& job, Time completion) {
  return (completion - job.release) / platform.best_time(job);
}

ScheduleMetrics metrics_from_completions(
    const Instance& instance, const std::vector<Time>& completions) {
  if (completions.size() != instance.jobs.size()) {
    throw std::runtime_error(
        "metrics_from_completions: completion vector size mismatch");
  }
  ScheduleMetrics m;
  const int n = instance.job_count();
  m.per_job.reserve(n);
  double sum_stretch = 0.0;
  double sum_response = 0.0;
  for (int i = 0; i < n; ++i) {
    const Job& job = instance.jobs[i];
    JobMetrics jm;
    jm.id = job.id;
    jm.completion = completions[i];
    jm.response = completions[i] - job.release;
    jm.best_time = instance.platform.best_time(job);
    jm.stretch = jm.response / jm.best_time;
    sum_stretch += jm.stretch;
    sum_response += jm.response;
    m.max_stretch = std::max(m.max_stretch, jm.stretch);
    m.max_response = std::max(m.max_response, jm.response);
    m.makespan = std::max(m.makespan, jm.completion);
    m.per_job.push_back(jm);
  }
  if (n > 0) {
    m.mean_stretch = sum_stretch / n;
    m.mean_response = sum_response / n;
  }
  return m;
}

ScheduleMetrics compute_metrics(const Instance& instance,
                                const Schedule& schedule) {
  // Extract the completion vector, delegate the per-job aggregation to
  // metrics_from_completions, then add what only the interval history can
  // provide: re-execution counts and utilization.
  const int n = instance.job_count();
  std::vector<Time> completions(n);
  for (int i = 0; i < n; ++i) {
    const auto completion = schedule.job(i).completion();
    if (!completion) {
      throw std::runtime_error("compute_metrics: job " + std::to_string(i) +
                               " has no completion time");
    }
    completions[i] = *completion;
  }
  ScheduleMetrics m = metrics_from_completions(instance, completions);

  double edge_busy = 0.0;
  double cloud_busy = 0.0;
  for (int i = 0; i < n; ++i) {
    const JobSchedule& js = schedule.job(i);
    m.reexecutions += static_cast<int>(js.abandoned.size());
    const auto busy_of = [&](const RunRecord& run) {
      if (run.alloc == kAllocEdge) {
        edge_busy += run.exec.measure();
      } else if (is_cloud_alloc(run.alloc)) {
        cloud_busy += run.exec.measure();
      }
    };
    busy_of(js.final_run);
    for (const RunRecord& run : js.abandoned) busy_of(run);
  }

  const double horizon = m.makespan;
  if (horizon > 0.0) {
    const int pe = instance.platform.edge_count();
    const int pc = instance.platform.cloud_count();
    if (pe > 0) m.edge_utilization = edge_busy / (horizon * pe);
    if (pc > 0) m.cloud_utilization = cloud_busy / (horizon * pc);
  }
  return m;
}

}  // namespace ecs
