// energy.hpp - Energy accounting for schedules.
//
// The paper's introduction singles out energy consumption as the other
// first-class criterion on edge-cloud platforms and leaves multi-objective
// optimization as future work. This module implements the accounting side:
// given a schedule, it charges
//
//   * active computation on edge processors (integrated over E_i),
//   * active computation on cloud processors,
//   * radio activity at the edge for uplinks and downlinks (the dominant
//     energy term for battery-powered devices),
//   * idle power for every processor over the schedule's makespan,
//
// including the activity of abandoned runs — energy wasted by
// re-execution is real and reported separately. The defaults are
// order-of-magnitude figures for an embedded-device + datacenter setting
// (edge compute cheap in absolute watts, cloud compute power-hungry,
// radios expensive relative to edge CPUs); experiments should set their
// own coefficients.
#pragma once

#include "core/platform.hpp"
#include "core/schedule.hpp"

namespace ecs {

struct EnergyModel {
  double edge_compute_power = 1.0;   ///< W per actively computing edge CPU
  double cloud_compute_power = 8.0;  ///< W per actively computing cloud CPU
  double uplink_power = 2.0;         ///< W at the edge radio while sending
  double downlink_power = 1.2;       ///< W at the edge radio while receiving
  double edge_idle_power = 0.1;      ///< W per edge processor when idle
  double cloud_idle_power = 2.0;     ///< W per cloud processor when idle
};

struct EnergyBreakdown {
  double edge_compute = 0.0;   ///< J spent computing on edges
  double cloud_compute = 0.0;  ///< J spent computing on clouds
  double communication = 0.0;  ///< J spent on edge radios (up + down)
  double idle = 0.0;           ///< J of idle power over the makespan
  double wasted = 0.0;         ///< J inside abandoned (re-executed) runs
  double total = 0.0;          ///< everything incl. idle (wasted is a
                               ///< subset of the activity terms)
};

/// Integrates the model over the schedule. The idle term uses the
/// schedule's makespan as the horizon (0 when no job completed).
[[nodiscard]] EnergyBreakdown compute_energy(const Instance& instance,
                                             const Schedule& schedule,
                                             const EnergyModel& model = {});

}  // namespace ecs
