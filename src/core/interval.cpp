#include "core/interval.hpp"

#include <algorithm>
#include <sstream>

namespace ecs {

bool overlaps(const Interval& a, const Interval& b) noexcept {
  // Positive-measure overlap: strict comparisons with tolerance, so merely
  // touching endpoints (a.end == b.begin) are not flagged.
  return time_lt(a.begin, b.end) && time_lt(b.begin, a.end);
}

std::string to_string(const Interval& iv) {
  std::ostringstream os;
  os << "[" << iv.begin << ", " << iv.end << ")";
  return os.str();
}

void IntervalSet::add(Time begin, Time end) {
  // Drop only truly degenerate insertions (floating-point noise). The
  // tolerance here is deliberately absolute and tiny: a short preemption
  // slice late in a long simulation is a legitimate interval and its
  // measure counts toward the job's quantities, so it must not be dropped
  // just because the *time comparison* tolerance scales with magnitude.
  if (!(end - begin > 1e-9)) return;
  Interval merged{begin, end};
  // Merging uses a tiny *absolute* epsilon: the engine re-opens an
  // interrupted activity at the exact same double it closed it, so exact
  // continuations always merge, while a short-but-real gap (another job's
  // brief preemption slice) must never be bridged — a magnitude-scaled
  // tolerance would swallow legitimate sub-tolerance slices late in a long
  // simulation and corrupt the recorded schedule.
  constexpr double kMergeEps = 1e-9;
  auto first = std::lower_bound(
      intervals_.begin(), intervals_.end(), merged,
      [](const Interval& a, const Interval& b) { return a.end < b.begin; });
  auto last = first;
  while (last != intervals_.end() &&
         last->begin <= merged.end + kMergeEps) {
    // `last` touches or overlaps; absorb it.
    merged.begin = std::min(merged.begin, last->begin);
    merged.end = std::max(merged.end, last->end);
    ++last;
  }
  // Also absorb a predecessor that touches within the epsilon (lower_bound
  // with exact comparison can miss an epsilon-touching neighbour).
  while (first != intervals_.begin() &&
         std::prev(first)->end >= merged.begin - kMergeEps) {
    --first;
    merged.begin = std::min(merged.begin, first->begin);
    merged.end = std::max(merged.end, first->end);
  }
  const auto pos = intervals_.erase(first, last);
  intervals_.insert(pos, merged);
}

void IntervalSet::add(const IntervalSet& other) {
  for (const Interval& iv : other.intervals_) add(iv);
}

double IntervalSet::measure() const noexcept {
  double total = 0.0;
  for (const Interval& iv : intervals_) total += iv.length();
  return total;
}

std::optional<Time> IntervalSet::min() const noexcept {
  if (intervals_.empty()) return std::nullopt;
  return intervals_.front().begin;
}

std::optional<Time> IntervalSet::max() const noexcept {
  if (intervals_.empty()) return std::nullopt;
  return intervals_.back().end;
}

bool IntervalSet::intersects(const Interval& iv) const noexcept {
  if (iv.empty()) return false;
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), iv,
      [](const Interval& a, const Interval& b) { return a.end <= b.begin; });
  return it != intervals_.end() && overlaps(*it, iv);
}

bool IntervalSet::intersects(const IntervalSet& other) const noexcept {
  return first_overlap(other).has_value();
}

std::optional<std::pair<Interval, Interval>> IntervalSet::first_overlap(
    const IntervalSet& other) const noexcept {
  // Linear merge over the two sorted lists.
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < intervals_.size() && j < other.intervals_.size()) {
    const Interval& a = intervals_[i];
    const Interval& b = other.intervals_[j];
    if (overlaps(a, b)) return std::make_pair(a, b);
    if (a.end < b.end) {
      ++i;
    } else {
      ++j;
    }
  }
  return std::nullopt;
}

bool IntervalSet::contains(Time t) const noexcept {
  for (const Interval& iv : intervals_) {
    if (time_le(iv.begin, t) && time_lt(t, iv.end)) return true;
    if (iv.begin > t) break;  // sorted; no later interval can contain t
  }
  return false;
}

bool IntervalSet::covers(const Interval& iv) const noexcept {
  if (iv.empty()) return true;
  for (const Interval& member : intervals_) {
    if (time_le(member.begin, iv.begin) && time_ge(member.end, iv.end)) {
      return true;
    }
  }
  return false;
}

std::string to_string(const IntervalSet& set) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const Interval& iv : set.intervals()) {
    if (!first) os << ", ";
    os << to_string(iv);
    first = false;
  }
  os << "}";
  return os.str();
}

}  // namespace ecs
