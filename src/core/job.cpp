#include "core/job.hpp"

#include <cmath>
#include <sstream>

namespace ecs {

std::string to_string(const Job& job) {
  std::ostringstream os;
  os << "J" << job.id << "{origin=" << job.origin << ", w=" << job.work
     << ", r=" << job.release << ", up=" << job.up << ", dn=" << job.down
     << "}";
  return os.str();
}

std::string validate_job(const Job& job, int edge_count) {
  std::ostringstream os;
  // Work below the amount tolerance is indistinguishable from "already
  // finished" to the engine (its completion detection would never fire),
  // so such degenerate jobs are rejected up front. 10x the tolerance keeps
  // a safety margin.
  if (!(job.work > 10.0 * kAmountEpsilon) || !std::isfinite(job.work)) {
    os << "job " << job.id << ": work must exceed " << 10.0 * kAmountEpsilon
       << " (the amount tolerance) and be finite, got " << job.work;
    return os.str();
  }
  if (job.release < 0.0 || !std::isfinite(job.release)) {
    os << "job " << job.id << ": release date must be >= 0 and finite, got "
       << job.release;
    return os.str();
  }
  if (job.up < 0.0 || !std::isfinite(job.up)) {
    os << "job " << job.id << ": uplink time must be >= 0 and finite, got "
       << job.up;
    return os.str();
  }
  if (job.down < 0.0 || !std::isfinite(job.down)) {
    os << "job " << job.id << ": downlink time must be >= 0 and finite, got "
       << job.down;
    return os.str();
  }
  if (job.origin < 0 || job.origin >= edge_count) {
    os << "job " << job.id << ": origin " << job.origin
       << " out of range [0, " << edge_count << ")";
    return os.str();
  }
  return {};
}

}  // namespace ecs
