// schedule.hpp - Concrete schedules for MinMaxStretch-EdgeCloud.
//
// A schedule (paper section III-B) fixes, for every job, its allocation
// alloc(i) — the origin edge processor or one cloud processor — and the
// disjoint interval sets E_i (execution), U_i (uplink) and D_i (downlink).
//
// The paper allows *re-execution*: a job may abandon a resource and restart
// from scratch elsewhere. The abandoned activity still occupied processors
// and communication ports, so we record it: each job has one final
// RunRecord plus any number of abandoned ones. Validation checks resource
// exclusivity over all runs but work/communication quantities only on the
// final run.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/interval.hpp"
#include "core/job.hpp"

namespace ecs {

/// alloc(i) values. The paper writes alloc(i) = 0 for a local execution and
/// k in [1, P^c] for cloud processor k; we use kAllocEdge and 0-based cloud
/// indices instead.
inline constexpr int kAllocUnassigned = -2;
inline constexpr int kAllocEdge = -1;

[[nodiscard]] constexpr bool is_cloud_alloc(int alloc) noexcept {
  return alloc >= 0;
}

/// One run of a job on one resource: the execution intervals, and for cloud
/// runs the uplink/downlink intervals. Edge runs keep uplink/downlink empty.
struct RunRecord {
  int alloc = kAllocUnassigned;
  IntervalSet exec;
  IntervalSet uplink;
  IntervalSet downlink;

  /// Completion of this run: the end of the downlink for a cloud run, of
  /// the execution for an edge run. nullopt when nothing happened yet.
  [[nodiscard]] std::optional<Time> completion() const noexcept {
    if (is_cloud_alloc(alloc) && !downlink.empty()) return downlink.max();
    if (is_cloud_alloc(alloc) && downlink.empty() && !exec.empty()) {
      // Cloud job with zero downlink time completes at end of execution.
      return exec.max();
    }
    if (alloc == kAllocEdge) return exec.max();
    return std::nullopt;
  }
};

/// Everything that happened to one job.
struct JobSchedule {
  RunRecord final_run;
  std::vector<RunRecord> abandoned;  ///< runs whose progress was lost

  [[nodiscard]] std::optional<Time> completion() const noexcept {
    return final_run.completion();
  }
};

/// A complete schedule for an instance. Indexed by JobId.
class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(int job_count) : jobs_(job_count) {}

  [[nodiscard]] int job_count() const noexcept {
    return static_cast<int>(jobs_.size());
  }
  [[nodiscard]] JobSchedule& job(JobId id) { return jobs_.at(id); }
  [[nodiscard]] const JobSchedule& job(JobId id) const { return jobs_.at(id); }
  [[nodiscard]] const std::vector<JobSchedule>& jobs() const noexcept {
    return jobs_;
  }

  /// Latest completion over all jobs; nullopt when any job is incomplete.
  [[nodiscard]] std::optional<Time> makespan() const noexcept;

 private:
  std::vector<JobSchedule> jobs_;
};

/// Multi-line human-readable dump (for examples and debugging).
[[nodiscard]] std::string to_string(const Schedule& schedule);

}  // namespace ecs
