// platform.hpp - The two-level edge-cloud platform (paper section III-A).
//
// P^c homogeneous cloud processors of speed 1 and P^e edge processors of
// speeds s_j <= 1. The platform knows how long a job takes on either side:
//   t^e_i = w_i / s_{o_i}                 (local execution)
//   t^c_i = up_i + w_i + dn_i             (delegated execution)
// and the stretch denominator min(t^e_i, t^c_i).
#pragma once

#include <string>
#include <vector>

#include "core/interval.hpp"
#include "core/job.hpp"
#include "core/time.hpp"

namespace ecs {

class Platform {
 public:
  Platform() = default;

  /// Builds the paper's platform: homogeneous cloud processors of speed 1.
  /// Every edge speed must lie in (0, 1]; cloud_count must be >= 0.
  Platform(std::vector<double> edge_speeds, int cloud_count);

  /// Extension (paper section II: "it is not difficult to extend our model
  /// with heterogeneous cloud processors"): explicit per-cloud speeds.
  /// Cloud speeds must be positive (they may exceed 1).
  Platform(std::vector<double> edge_speeds,
           std::vector<double> cloud_speeds);

  [[nodiscard]] int edge_count() const noexcept {
    return static_cast<int>(edge_speeds_.size());
  }
  [[nodiscard]] int cloud_count() const noexcept {
    return static_cast<int>(cloud_speeds_.size());
  }
  [[nodiscard]] int processor_count() const noexcept {
    return edge_count() + cloud_count();
  }

  [[nodiscard]] double edge_speed(EdgeId j) const { return edge_speeds_.at(j); }
  [[nodiscard]] const std::vector<double>& edge_speeds() const noexcept {
    return edge_speeds_;
  }
  [[nodiscard]] double cloud_speed(CloudId k) const {
    return cloud_speeds_.at(k);
  }
  [[nodiscard]] const std::vector<double>& cloud_speeds() const noexcept {
    return cloud_speeds_;
  }
  /// True when every cloud processor has speed exactly 1 (the paper's
  /// baseline model).
  [[nodiscard]] bool homogeneous_cloud() const noexcept;
  /// Speed of the fastest cloud processor (0 when there is no cloud).
  [[nodiscard]] double max_cloud_speed() const noexcept;

  /// Aggregate speed of all processors; the paper uses it to size the
  /// release-date horizon for a target load.
  [[nodiscard]] double total_speed() const noexcept;

  /// t^e_i: execution time of the job on its origin edge processor.
  [[nodiscard]] double edge_time(const Job& job) const;

  /// t^c_i: best execution time of the job when delegated to the cloud
  /// (uplink + work on the fastest cloud + downlink).
  [[nodiscard]] double cloud_time(const Job& job) const;

  /// Execution time of the job when delegated to cloud processor k.
  [[nodiscard]] double cloud_time_on(const Job& job, CloudId k) const;

  /// min(t^e_i, t^c_i): the best time the job could take on a dedicated
  /// platform — the stretch denominator.
  [[nodiscard]] double best_time(const Job& job) const;

  [[nodiscard]] bool operator==(const Platform&) const = default;

 private:
  std::vector<double> edge_speeds_;
  std::vector<double> cloud_speeds_;
};

/// A problem instance: a platform plus its jobs (ids must equal positions).
///
/// `cloud_outages` implements the paper's future-work scenario where cloud
/// processors are "dynamically requested by other applications at certain
/// time intervals": entry k lists the intervals during which cloud
/// processor k is unavailable (no computation and no communication
/// involving it; in-flight activities are preempted at the boundary and
/// resume afterwards, keeping their progress). Leave empty for the paper's
/// baseline model of always-available clouds; otherwise it must have
/// exactly one entry per cloud processor.
struct Instance {
  Platform platform;
  std::vector<Job> jobs;
  std::vector<IntervalSet> cloud_outages;

  [[nodiscard]] int job_count() const noexcept {
    return static_cast<int>(jobs.size());
  }

  /// True when cloud processor k is available at time t.
  [[nodiscard]] bool cloud_available(CloudId k, Time t) const {
    if (cloud_outages.empty()) return true;
    return !cloud_outages.at(k).contains(t);
  }
};

/// Checks platform parameters and all jobs; returns a list of problems
/// (empty when the instance is well-formed).
[[nodiscard]] std::vector<std::string> validate_instance(
    const Instance& instance);

/// Convenience: throws std::invalid_argument when the instance is invalid.
void require_valid_instance(const Instance& instance);

}  // namespace ecs
