// validate.hpp - Schedule validity checking (paper section III-B).
//
// A schedule is valid when:
//  * every job is allocated (origin edge processor or a cloud processor)
//    and nothing of it happens before its release date;
//  * quantities are fulfilled by the final run: for an edge execution,
//    |E_i| >= w_i / s_{o_i}; for a cloud execution, |U_i| >= up_i,
//    |E_i| >= w_i, |D_i| >= dn_i;
//  * per-job precedence holds: max(U_i) <= min(E_i) <= max(E_i) <= min(D_i);
//  * processors execute at most one job at a time (edge and cloud), counting
//    abandoned runs, which physically occupied the processor;
//  * the one-port full-duplex model holds: per edge processor, all uplinks
//    (send port) are pairwise disjoint and all downlinks (receive port) are
//    pairwise disjoint; per cloud processor, all incoming uplinks (receive
//    port) are pairwise disjoint and all outgoing downlinks (send port) are
//    pairwise disjoint. Send and receive may overlap (full duplex), and
//    computation overlaps communication freely;
//  * a single job never does two things at once (its own intervals, across
//    all runs and activity kinds, are pairwise disjoint).
#pragma once

#include <string>
#include <vector>

#include "core/platform.hpp"
#include "core/schedule.hpp"
#include "sim/faults.hpp"

namespace ecs {

enum class ViolationKind {
  kUnallocated,         ///< job has no final allocation
  kBeforeRelease,       ///< activity starts before the job's release date
  kQuantity,            ///< work/communication amount not fulfilled
  kPrecedence,          ///< uplink/exec/downlink order violated
  kProcessorConflict,   ///< two executions overlap on one processor
  kPortConflict,        ///< one-port model violated (send or receive port)
  kSelfOverlap,         ///< one job doing two things at the same time
  kBadAllocation,       ///< allocation index out of range
  kOutageConflict,      ///< activity scheduled during a cloud outage
  kFaultConflict,       ///< activity on a cloud while it was crashed
  kFaultRestart,        ///< a run kept progress across a crash of its cloud
  /// A job that admission control rejected or shed has recorded activity —
  /// refused jobs must leave no intervals behind.
  kRejectedActivity,
};

struct Violation {
  ViolationKind kind;
  JobId job_a = -1;            ///< primary job involved
  JobId job_b = -1;            ///< secondary job for conflicts, else -1
  std::string message;         ///< human-readable diagnostic
};

[[nodiscard]] std::string to_string(ViolationKind kind);
[[nodiscard]] std::string to_string(const Violation& violation);

/// Runs every check; returns all violations found (empty == valid).
[[nodiscard]] std::vector<Violation> validate_schedule(
    const Instance& instance, const Schedule& schedule);

/// Fault-aware overload: additionally checks the schedule against an
/// unannounced fault plan (sim/faults.hpp) —
///  * kFaultConflict: no recorded interval on cloud k overlaps one of k's
///    crash windows (the machine was dead);
///  * kFaultRestart: no single run on cloud k has recorded activity both
///    before and after one of k's crash starts — a crash wipes the
///    machine, so a conforming re-execution restarts as a NEW run from
///    zero progress (contrast with announced outages, which suspend and
///    legally resume within the same run).
[[nodiscard]] std::vector<Violation> validate_schedule(
    const Instance& instance, const Schedule& schedule,
    const FaultPlan& faults);

/// Admission-aware overload: `refused` lists the jobs admission control
/// rejected at arrival or shed before they started (SimResult::
/// admission_log). A refused job is exempt from the allocation and quantity
/// requirements but must have recorded NO activity at all — any interval of
/// its final or abandoned runs is a kRejectedActivity violation. All other
/// checks run unchanged over the remaining jobs.
[[nodiscard]] std::vector<Violation> validate_schedule(
    const Instance& instance, const Schedule& schedule,
    const FaultPlan& faults, const std::vector<JobId>& refused);

/// Convenience wrapper.
[[nodiscard]] bool is_valid_schedule(const Instance& instance,
                                     const Schedule& schedule);

/// Throws std::runtime_error with all diagnostics when invalid. Used by the
/// bench harness so that an invalid schedule can never silently contribute
/// to a reported figure.
void require_valid_schedule(const Instance& instance,
                            const Schedule& schedule);

/// Fault-aware overload of require_valid_schedule.
void require_valid_schedule(const Instance& instance,
                            const Schedule& schedule,
                            const FaultPlan& faults);

/// Admission-aware overload of require_valid_schedule.
void require_valid_schedule(const Instance& instance,
                            const Schedule& schedule,
                            const FaultPlan& faults,
                            const std::vector<JobId>& refused);

}  // namespace ecs
