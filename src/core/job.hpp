// job.hpp - The job model of the MinMaxStretch-EdgeCloud problem (paper
// section III-A).
//
// A job J_i is described by its origin edge processor o_i, its work w_i
// (time to execute at cloud speed 1), its release date r_i, and the uplink /
// downlink communication times up_i / dn_i incurred when delegated to the
// cloud.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/time.hpp"

namespace ecs {

/// Index of a job within an Instance (0-based).
using JobId = std::int32_t;

/// Index of an edge processor (0-based; the paper numbers them from 1).
using EdgeId = std::int32_t;

/// Index of a cloud processor (0-based).
using CloudId = std::int32_t;

struct Job {
  JobId id = -1;      ///< Position in the instance's job vector.
  EdgeId origin = 0;  ///< o_i: the edge processor that generates the job.
  double work = 0.0;  ///< w_i: work amount (time at cloud speed 1). > 0.
  Time release = 0.0; ///< r_i: release date. >= 0.
  double up = 0.0;    ///< up_i: uplink communication time. >= 0.
  double down = 0.0;  ///< dn_i: downlink communication time. >= 0.

  [[nodiscard]] bool operator==(const Job&) const = default;
};

/// Human-readable one-line description, for diagnostics.
[[nodiscard]] std::string to_string(const Job& job);

/// Validates a single job's parameters; returns an empty string when valid,
/// otherwise a description of the problem.
[[nodiscard]] std::string validate_job(const Job& job, int edge_count);

}  // namespace ecs
