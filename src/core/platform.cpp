#include "core/platform.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace ecs {
namespace {

void check_edge_speeds(const std::vector<double>& speeds) {
  for (double s : speeds) {
    if (!(s > 0.0) || s > 1.0 || !std::isfinite(s)) {
      throw std::invalid_argument(
          "edge speeds must lie in (0, 1]; got " + std::to_string(s));
    }
  }
}

}  // namespace

Platform::Platform(std::vector<double> edge_speeds, int cloud_count)
    : edge_speeds_(std::move(edge_speeds)) {
  if (cloud_count < 0) {
    throw std::invalid_argument("cloud_count must be >= 0");
  }
  check_edge_speeds(edge_speeds_);
  cloud_speeds_.assign(cloud_count, 1.0);
}

Platform::Platform(std::vector<double> edge_speeds,
                   std::vector<double> cloud_speeds)
    : edge_speeds_(std::move(edge_speeds)),
      cloud_speeds_(std::move(cloud_speeds)) {
  check_edge_speeds(edge_speeds_);
  for (double s : cloud_speeds_) {
    if (!(s > 0.0) || !std::isfinite(s)) {
      throw std::invalid_argument(
          "cloud speeds must be positive; got " + std::to_string(s));
    }
  }
}

bool Platform::homogeneous_cloud() const noexcept {
  return std::all_of(cloud_speeds_.begin(), cloud_speeds_.end(),
                     [](double s) { return s == 1.0; });
}

double Platform::max_cloud_speed() const noexcept {
  if (cloud_speeds_.empty()) return 0.0;
  return *std::max_element(cloud_speeds_.begin(), cloud_speeds_.end());
}

double Platform::total_speed() const noexcept {
  const double edges =
      std::accumulate(edge_speeds_.begin(), edge_speeds_.end(), 0.0);
  const double clouds =
      std::accumulate(cloud_speeds_.begin(), cloud_speeds_.end(), 0.0);
  return edges + clouds;
}

double Platform::edge_time(const Job& job) const {
  return job.work / edge_speed(job.origin);
}

double Platform::cloud_time(const Job& job) const {
  return job.up + job.work / max_cloud_speed() + job.down;
}

double Platform::cloud_time_on(const Job& job, CloudId k) const {
  return job.up + job.work / cloud_speed(k) + job.down;
}

double Platform::best_time(const Job& job) const {
  if (cloud_count() == 0) return edge_time(job);
  return std::min(edge_time(job), cloud_time(job));
}

std::vector<std::string> validate_instance(const Instance& instance) {
  std::vector<std::string> problems;
  if (instance.platform.edge_count() == 0) {
    problems.push_back("platform has no edge processors");
  }
  if (!instance.cloud_outages.empty() &&
      static_cast<int>(instance.cloud_outages.size()) !=
          instance.platform.cloud_count()) {
    problems.push_back(
        "cloud_outages must be empty or have one entry per cloud processor");
  }
  for (std::size_t i = 0; i < instance.jobs.size(); ++i) {
    const Job& job = instance.jobs[i];
    if (job.id != static_cast<JobId>(i)) {
      std::ostringstream os;
      os << "job at position " << i << " has id " << job.id
         << " (ids must equal positions)";
      problems.push_back(os.str());
    }
    const std::string msg =
        validate_job(job, instance.platform.edge_count());
    if (!msg.empty()) problems.push_back(msg);
  }
  return problems;
}

void require_valid_instance(const Instance& instance) {
  const auto problems = validate_instance(instance);
  if (!problems.empty()) {
    std::string all = "invalid instance:";
    for (const auto& p : problems) {
      all += "\n  - ";
      all += p;
    }
    throw std::invalid_argument(all);
  }
}

}  // namespace ecs
