#include "core/schedule.hpp"

#include <algorithm>
#include <sstream>

namespace ecs {

std::optional<Time> Schedule::makespan() const noexcept {
  Time latest = 0.0;
  for (const JobSchedule& js : jobs_) {
    const auto c = js.completion();
    if (!c) return std::nullopt;
    latest = std::max(latest, *c);
  }
  return latest;
}

std::string to_string(const Schedule& schedule) {
  std::ostringstream os;
  for (int i = 0; i < schedule.job_count(); ++i) {
    const JobSchedule& js = schedule.job(i);
    os << "J" << i << ": alloc=";
    if (js.final_run.alloc == kAllocEdge) {
      os << "edge";
    } else if (js.final_run.alloc == kAllocUnassigned) {
      os << "unassigned";
    } else {
      os << "cloud" << js.final_run.alloc;
    }
    if (!js.final_run.uplink.empty()) {
      os << " up=" << to_string(js.final_run.uplink);
    }
    os << " exec=" << to_string(js.final_run.exec);
    if (!js.final_run.downlink.empty()) {
      os << " down=" << to_string(js.final_run.downlink);
    }
    if (!js.abandoned.empty()) {
      os << " (+" << js.abandoned.size() << " abandoned run(s))";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace ecs
