// ehealth.cpp - Fairness under bursty e-health monitoring traffic.
//
// An e-health gateway aggregates wearable sensors. Most jobs are tiny
// (heartbeat anomaly checks) but occasionally a large job arrives (a full
// ECG-batch analysis). Max-stretch is precisely the fairness metric for
// this mix: a schedule optimizing only response time lets the big jobs
// starve the small ones. This example builds such a bimodal, bursty
// workload by hand and contrasts FCFS (length-blind) with the paper's
// stretch-aware heuristics — reproducing, on a realistic scenario, the
// paper's introductory 1h/10h example of why stretch matters.
//
// Run:  ./ehealth [--gateways=4] [--cloud=2] [--bursts=10] [--seed=3]
#include <cstdio>
#include <string>

#include "exp/runner.hpp"
#include "sched/factory.hpp"
#include "util/args.hpp"
#include "workloads/load.hpp"

namespace {

ecs::Instance make_ehealth_instance(int gateways, int cloud, int bursts,
                                    ecs::Rng& rng) {
  ecs::Instance instance;
  // Gateways are small ARM boxes: speed 0.25.
  instance.platform = ecs::Platform(std::vector<double>(gateways, 0.25),
                                    cloud);
  ecs::JobId next_id = 0;
  double t = 0.0;
  for (int b = 0; b < bursts; ++b) {
    // Burst start: a batch job plus a flurry of small checks, all released
    // within a second on a random gateway.
    t += rng.uniform(30.0, 60.0);
    const auto origin =
        static_cast<ecs::EdgeId>(rng.uniform_int(0, gateways - 1));
    // One heavy ECG batch: ~50 units of work, sizeable transfer.
    instance.jobs.push_back(ecs::Job{next_id++, origin,
                                     rng.uniform(40.0, 60.0), t,
                                     rng.uniform(4.0, 6.0),
                                     rng.uniform(1.0, 2.0)});
    // A dozen small anomaly checks: ~0.5 units each, cheap transfers.
    const int small = static_cast<int>(rng.uniform_int(8, 16));
    for (int s = 0; s < small; ++s) {
      instance.jobs.push_back(ecs::Job{next_id++, origin,
                                       rng.uniform(0.2, 1.0),
                                       t + rng.uniform(0.0, 1.0),
                                       rng.uniform(0.05, 0.2),
                                       rng.uniform(0.05, 0.2)});
    }
  }
  return instance;
}

}  // namespace

int main(int argc, char** argv) {
  const ecs::Args args = ecs::Args::parse(argc, argv);
  const int gateways = static_cast<int>(args.get_int("gateways", 4));
  const int cloud = static_cast<int>(args.get_int("cloud", 2));
  const int bursts = static_cast<int>(args.get_int("bursts", 10));
  ecs::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 3)));

  const ecs::Instance instance =
      make_ehealth_instance(gateways, cloud, bursts, rng);
  std::printf("e-health: %d gateways, %d cloud processors, %zu jobs in %d "
              "bursts (bimodal sizes)\n\n",
              gateways, cloud, instance.jobs.size(), bursts);

  std::printf("%-10s %-12s %-12s %-14s\n", "policy", "max-stretch",
              "mean-stretch", "max-response");
  for (const std::string& name :
       {std::string("fcfs"), std::string("greedy"), std::string("srpt"),
        std::string("ssf-edf")}) {
    ecs::RunOptions options;
    options.validate = true;
    const ecs::RunOutcome outcome = ecs::run_policy(instance, name, options);
    std::printf("%-10s %-12.3f %-12.3f %-14.3f\n", name.c_str(),
                outcome.metrics.max_stretch, outcome.metrics.mean_stretch,
                outcome.metrics.max_response);
  }
  std::printf(
      "\nFCFS lets the heavy ECG batches delay the tiny anomaly checks —\n"
      "their stretch explodes even though absolute responses look fine.\n"
      "The stretch-aware heuristics keep small jobs responsive.\n");
  return 0;
}
