// quickstart.cpp - Minimal tour of the edgecloud-stretch public API.
//
// Builds a small edge-cloud platform, releases a handful of jobs, runs the
// paper's SSF-EDF heuristic through the event-driven simulator, validates
// the resulting schedule against the formal model, and prints per-job
// stretches.
//
// Run:  ./quickstart [--policy=ssf-edf]
#include <cstdio>
#include <iostream>

#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "exp/runner.hpp"
#include "sched/factory.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  const ecs::Args args = ecs::Args::parse(argc, argv);
  const std::string policy_name = args.get_or("policy", "ssf-edf");

  // A platform with two edge processors (a slow sensor node at speed 0.2
  // and a faster gateway at speed 0.5) and two cloud processors (speed 1).
  ecs::Instance instance;
  instance.platform = ecs::Platform({0.2, 0.5}, 2);

  // Six jobs; {id, origin, work, release, up, down}.
  instance.jobs = {
      {0, 0, 4.0, 0.0, 1.0, 0.5},   // heavy job from the slow node
      {1, 0, 0.5, 1.0, 2.0, 2.0},   // tiny job, expensive to ship
      {2, 1, 6.0, 2.0, 0.5, 0.5},   // heavy job from the gateway
      {3, 1, 1.0, 2.5, 0.2, 0.2},   // small job, cheap to ship
      {4, 0, 3.0, 4.0, 1.0, 1.0},
      {5, 1, 2.0, 5.0, 0.3, 0.3},
  };
  ecs::require_valid_instance(instance);

  // Run the heuristic through the simulator, with validation enabled.
  ecs::RunOptions options;
  options.validate = true;
  const ecs::RunOutcome outcome =
      ecs::run_policy(instance, policy_name, options);

  std::printf("policy: %s\n", outcome.policy.c_str());
  std::printf("schedule valid: %s\n", outcome.validated ? "yes" : "no");
  std::printf("%-4s %-8s %-10s %-10s %-8s\n", "job", "best", "completion",
              "response", "stretch");
  for (const ecs::JobMetrics& jm : outcome.metrics.per_job) {
    std::printf("J%-3d %-8.3f %-10.3f %-10.3f %-8.3f\n", jm.id, jm.best_time,
                jm.completion, jm.response, jm.stretch);
  }
  std::printf("\nmax stretch : %.4f\n", outcome.metrics.max_stretch);
  std::printf("mean stretch: %.4f\n", outcome.metrics.mean_stretch);
  std::printf("makespan    : %.4f\n", outcome.metrics.makespan);
  std::printf("events      : %llu, re-executions: %llu\n",
              static_cast<unsigned long long>(outcome.stats.events),
              static_cast<unsigned long long>(outcome.stats.reassignments));
  return 0;
}
