// paper_example.cpp - Reproduces Figure 1 of the paper.
//
// One edge processor (speed 1/3) and one cloud processor; six jobs. The
// paper exhibits an optimal schedule of max-stretch 5/4 in which J1, J4 and
// J6 run on the edge while J2, J3 and J5 are delegated to the cloud, and J6
// preempts J4 at time 6. We replay exactly that decision (allocations and
// priorities) through the engine, validate the schedule, and also search
// the entire fixed-priority class by brute force to confirm that 5/4 is the
// best achievable value.
#include <cstdio>

#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "sched/fixed.hpp"
#include "sched/offline/brute_force.hpp"
#include "sim/engine.hpp"

namespace {

ecs::Instance figure1_instance() {
  ecs::Instance instance;
  instance.platform = ecs::Platform({1.0 / 3.0}, 1);
  // {id, origin, work, release, up, down} — paper section III-C.
  //
  // The communication times of J3 and J5 are reconstructed as up = 2,
  // dn = 1: the paper states both jobs take 5 units on the cloud
  // (up + w + dn = 5 with w = 2), reach stretch 6/5 after one unit of
  // delay, and that at time 6 an uplink (J5) and a downlink (J2) are in
  // flight — all of which pins (up, dn) = (2, 1).
  instance.jobs = {
      {0, 0, 1.0, 0.0, 5.0, 5.0},        // J1
      {1, 0, 4.0, 0.0, 2.0, 2.0},        // J2
      {2, 0, 2.0, 3.0, 2.0, 1.0},        // J3
      {3, 0, 4.0 / 3.0, 5.0, 5.0, 5.0},  // J4
      {4, 0, 2.0, 5.0, 2.0, 1.0},        // J5
      {5, 0, 1.0 / 3.0, 6.0, 5.0, 5.0},  // J6
  };
  return instance;
}

}  // namespace

int main() {
  const ecs::Instance instance = figure1_instance();

  // The paper's allocation: J1, J4, J6 on the edge; J2, J3, J5 on cloud 0.
  // Priorities reproduce its interleaving: smaller value = more urgent, so
  // J6 (priority 0) preempts J4 (priority 5) when it is released at t=6.
  const std::vector<int> alloc = {ecs::kAllocEdge, 0, 0,
                                  ecs::kAllocEdge, 0, ecs::kAllocEdge};
  const std::vector<double> priority = {1, 2, 3, 5, 4, 0};

  ecs::FixedPolicy policy(alloc, priority);
  const ecs::SimResult sim = ecs::simulate(instance, policy);
  ecs::require_valid_schedule(instance, sim.schedule);
  const ecs::ScheduleMetrics metrics =
      ecs::compute_metrics(instance, sim.schedule);

  std::printf("Figure 1 replay (paper's schedule)\n");
  std::printf("%-4s %-7s %-10s %-8s\n", "job", "alloc", "completion",
              "stretch");
  for (const ecs::JobMetrics& jm : metrics.per_job) {
    const int a = sim.schedule.job(jm.id).final_run.alloc;
    std::printf("J%-3d %-7s %-10.3f %-8.4f\n", jm.id + 1,
                a == ecs::kAllocEdge ? "edge" : "cloud",
                jm.completion, jm.stretch);
  }
  std::printf("max stretch: %.6f (paper: 5/4 = 1.25)\n\n",
              metrics.max_stretch);

  std::printf("Brute-force search over all fixed-priority schedules...\n");
  const ecs::BruteForceResult best = ecs::brute_force_edge_cloud(instance);
  std::printf("best achievable max stretch: %.6f\n", best.max_stretch);
  std::printf("(confirms the paper's claim that the schedule is optimal)\n");
  return 0;
}
