// drone_fleet.cpp - Offloading vision workloads from a drone fleet.
//
// The paper's introduction motivates edge-cloud scheduling with autonomous
// vehicles and flying drones. This example models a fleet of drones whose
// on-board computers (slow, battery-bound edge processors) produce
// inference jobs — obstacle maps, detections — that can be offloaded over
// LTE to a ground-station cloud. It generates a Kang-style workload,
// runs all four paper heuristics plus FCFS on the very same instance, and
// prints the comparison: max/mean stretch, re-executions and scheduling
// time.
//
// Run:  ./drone_fleet [--drones=12] [--cloud=4] [--jobs=300] [--load=0.3]
//                     [--seed=7]
#include <cstdio>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "sched/factory.hpp"
#include "util/args.hpp"
#include "workloads/kang_instances.hpp"

int main(int argc, char** argv) {
  const ecs::Args args = ecs::Args::parse(argc, argv);

  ecs::KangInstanceConfig cfg;
  cfg.edge_count = static_cast<int>(args.get_int("drones", 12));
  cfg.cloud_count = static_cast<int>(args.get_int("cloud", 4));
  cfg.n = static_cast<int>(args.get_int("jobs", 300));
  cfg.load = args.get_double("load", 0.3);
  // Every drone uses an embedded GPU and an LTE link to the ground
  // station: collapse all channel means to LTE and all compute speeds to
  // GPU so the cycling profile assignment yields a homogeneous fleet.
  cfg.randomize_profiles = false;
  cfg.wifi_up_mean = cfg.lte_up_mean;
  cfg.threeg_up_mean = cfg.lte_up_mean;
  cfg.cpu_speed = cfg.gpu_speed;

  ecs::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 7)));
  const ecs::Instance instance = ecs::make_kang_instance(cfg, rng);

  std::printf("Drone fleet: %d drones (GPU, LTE), %d ground-station cloud "
              "processors, %d jobs, load %.2f\n\n",
              cfg.edge_count, cfg.cloud_count, cfg.n, cfg.load);

  std::printf("%-10s %-12s %-12s %-8s %-12s\n", "policy", "max-stretch",
              "mean-stretch", "re-exec", "sched-time");
  for (const std::string& name : ecs::policy_names()) {
    ecs::RunOptions options;
    options.validate = true;  // every schedule is checked against the model
    const ecs::RunOutcome outcome =
        ecs::run_policy(instance, name, options);
    std::printf("%-10s %-12.3f %-12.3f %-8llu %.4fs\n", name.c_str(),
                outcome.metrics.max_stretch, outcome.metrics.mean_stretch,
                static_cast<unsigned long long>(outcome.stats.reassignments),
                outcome.wall_seconds);
  }
  std::printf("\nAll schedules were validated against the formal model of "
              "the paper (section III-B).\n");
  return 0;
}
