// ecsched.cpp - Command-line edge-cloud scheduling simulator.
//
// The library packaged as a tool: load (or generate) an instance, run a
// heuristic through the validated simulator, and inspect the result as a
// summary, an ASCII Gantt chart, a per-job CSV, or a JSON schedule dump.
//
// Usage:
//   ecsched --instance=path.csv --policy=ssf-edf [--gantt] [--json=out.json]
//           [--per-job=out.csv] [--save-instance=copy.csv]
//   ecsched --generate=random --n=200 --ccr=1 --load=0.2 --seed=7 ...
//   ecsched --generate=kang --n=500 --edges=20 --clouds=10 ...
//
// Exit code 0 on success, 1 on bad usage, 2 when the produced schedule
// fails validation (which would indicate a library bug — please report).
#include <algorithm>
#include <fstream>
#include <iostream>

#include "core/energy.hpp"
#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "exp/gantt.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "workloads/kang_instances.hpp"
#include "workloads/random_instances.hpp"
#include "workloads/trace_io.hpp"

namespace {

void print_usage() {
  std::cout <<
      "ecsched - edge-cloud max-stretch scheduling simulator\n\n"
      "Input (one of):\n"
      "  --instance=FILE     load an instance CSV (see trace_io.hpp)\n"
      "  --generate=random   random scenario (--n, --ccr, --load, --seed)\n"
      "  --generate=kang     Kang scenario (--n, --edges, --clouds, --load,\n"
      "                      --seed)\n\n"
      "Scheduling:\n"
      "  --policy=NAME       edge-only | greedy | srpt | ssf-edf | fcfs\n"
      "                      (default ssf-edf)\n"
      "  --compare           run every policy and print a comparison\n\n"
      "Output:\n"
      "  --gantt             ASCII Gantt chart (--gantt-width=N)\n"
      "  --json=FILE         JSON schedule dump\n"
      "  --per-job=FILE      per-job metrics CSV\n"
      "  --energy            include an energy breakdown in the summary\n"
      "  --save-instance=F   write the (generated) instance as CSV\n";
}

}  // namespace

int main(int argc, char** argv) {
  const ecs::Args args = ecs::Args::parse(argc, argv);
  if (args.has("help")) {
    print_usage();
    return 0;
  }

  ecs::Instance instance;
  try {
    if (args.has("instance")) {
      instance = ecs::load_instance_file(args.get_or("instance", ""));
    } else if (args.get_or("generate", "") == "random") {
      ecs::RandomInstanceConfig cfg;
      cfg.n = static_cast<int>(args.get_int("n", 200));
      cfg.ccr = args.get_double("ccr", 1.0);
      cfg.load = args.get_double("load", 0.2);
      ecs::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 42)));
      instance = make_random_instance(cfg, rng);
    } else if (args.get_or("generate", "") == "kang") {
      ecs::KangInstanceConfig cfg;
      cfg.n = static_cast<int>(args.get_int("n", 500));
      cfg.edge_count = static_cast<int>(args.get_int("edges", 20));
      cfg.cloud_count = static_cast<int>(args.get_int("clouds", 10));
      cfg.load = args.get_double("load", 0.05);
      ecs::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 42)));
      instance = make_kang_instance(cfg, rng);
    } else {
      print_usage();
      return 1;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  if (args.has("save-instance")) {
    ecs::save_instance_file(args.get_or("save-instance", ""), instance);
  }

  if (args.has("compare")) {
    // Run every registered policy on the same instance and tabulate.
    std::printf("%-10s %-12s %-12s %-10s %-9s %-12s\n", "policy",
                "max-stretch", "mean-stretch", "p99", "re-exec",
                "active J/job");
    for (const std::string& name : ecs::policy_names()) {
      try {
        const auto policy = ecs::make_policy(name);
        const ecs::SimResult result = ecs::simulate(instance, *policy);
        ecs::require_valid_schedule(instance, result.schedule);
        const ecs::ScheduleMetrics m =
            compute_metrics(instance, result.schedule);
        const ecs::EnergyBreakdown e =
            compute_energy(instance, result.schedule);
        const double active =
            (e.edge_compute + e.cloud_compute + e.communication) /
            std::max(1, instance.job_count());
        std::printf("%-10s %-12.3f %-12.3f %-10.3f %-9llu %-12.3f\n",
                    name.c_str(), m.max_stretch, m.mean_stretch,
                    m.stretch_percentile(0.99),
                    static_cast<unsigned long long>(
                        result.stats.reassignments),
                    active);
      } catch (const std::exception& e) {
        std::printf("%-10s failed: %s\n", name.c_str(), e.what());
      }
    }
    return 0;
  }

  const std::string policy_name = args.get_or("policy", "ssf-edf");
  try {
    const auto policy = ecs::make_policy(policy_name);
    const ecs::SimResult result = ecs::simulate(instance, *policy);
    const auto violations =
        ecs::validate_schedule(instance, result.schedule);
    if (!violations.empty()) {
      std::cerr << "BUG: schedule failed validation:\n";
      for (const auto& v : violations) {
        std::cerr << "  " << to_string(v) << "\n";
      }
      return 2;
    }
    const ecs::ScheduleMetrics metrics =
        compute_metrics(instance, result.schedule);

    std::cout << "policy        : " << policy->name() << "\n"
              << "jobs          : " << instance.job_count() << "\n"
              << "platform      : " << instance.platform.edge_count()
              << " edge / " << instance.platform.cloud_count()
              << " cloud processors\n"
              << "max stretch   : " << metrics.max_stretch << "\n"
              << "mean stretch  : " << metrics.mean_stretch << "\n"
              << "makespan      : " << metrics.makespan << "\n"
              << "re-executions : " << metrics.reexecutions << "\n"
              << "events        : " << result.stats.events << "\n";

    if (args.has("energy")) {
      const ecs::EnergyBreakdown e =
          compute_energy(instance, result.schedule);
      std::cout << "energy [J]    : total " << e.total << " = edge "
                << e.edge_compute << " + cloud " << e.cloud_compute
                << " + radio " << e.communication << " + idle " << e.idle
                << " (wasted in re-executions: " << e.wasted << ")\n";
    }

    if (args.has("gantt")) {
      ecs::GanttOptions gantt;
      gantt.width = static_cast<int>(args.get_int("gantt-width", 100));
      std::cout << "\n" << render_gantt(instance, result.schedule, gantt);
    }
    if (args.has("json")) {
      std::ofstream out(args.get_or("json", ""));
      if (!out) {
        std::cerr << "cannot open json output\n";
        return 1;
      }
      write_schedule_json(out, instance, result.schedule, metrics);
    }
    if (args.has("per-job")) {
      std::ofstream out(args.get_or("per-job", ""));
      if (!out) {
        std::cerr << "cannot open per-job output\n";
        return 1;
      }
      save_metrics_csv(out, instance, result.schedule, metrics);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
